package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Journal is the crash-safe completion log backing checkpoint/resume: one
// JSON line per finished job, keyed by the job's content hash, appended and
// fsynced as each job completes. Reopening a journal replays its entries,
// so a resumed campaign re-runs only the jobs whose keys are missing. A
// torn final line (from a crash between write and fsync) is truncated on
// load so the campaign resumes cleanly and later appends cannot glue onto
// the partial record.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seen map[string]Result
}

// OpenJournal opens (creating if needed) the journal at path and replays
// its completed entries.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	j := &Journal{f: f, path: path, seen: map[string]Result{}}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: read journal: %w", err)
	}
	// A crash between an append's write and its fsync can tear the final
	// line. Every complete entry ends in '\n' (line and terminator go down
	// in one write), so an unterminated tail is a torn record: truncate it
	// away so the next append starts on a clean line boundary instead of
	// gluing onto the partial bytes and corrupting an otherwise-valid
	// entry. The torn job simply re-runs.
	if n := len(data); n > 0 && data[n-1] != '\n' {
		cut := bytes.LastIndexByte(data, '\n') + 1
		if err := f.Truncate(int64(cut)); err != nil {
			f.Close()
			return nil, fmt.Errorf("sweep: truncate torn journal tail: %w", err)
		}
		data = data[:cut]
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var r Result
		if err := json.Unmarshal(line, &r); err != nil || r.Key == "" {
			// Foreign or corrupt interior line: skip it. The matching job
			// simply re-runs.
			continue
		}
		j.seen[r.Key] = r
	}
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Len returns the number of distinct completed jobs on record.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Lookup returns the cached result for a job key, if present.
func (j *Journal) Lookup(key string) (Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.seen[key]
	return r, ok
}

// Append records a completed job: one marshaled line, flushed to disk
// before returning so a crash cannot lose an acknowledged completion.
func (j *Journal) Append(r Result) error {
	if r.Key == "" {
		return fmt.Errorf("sweep: journal entry without key (job %q)", r.JobID)
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("sweep: journal entry: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sweep: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sweep: journal sync: %w", err)
	}
	j.seen[r.Key] = r
	return nil
}

// Close releases the underlying file. The journal must not be used after.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
