package sweep

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"
)

// warmSpecDoc builds a grid with one cold axis (rate) and one warm axis
// (acquisition faults gated behind a fault-free lead-in of exactly the
// prefix length, so the warm patches are prefix-neutral by construction).
// With withWarm false the same grid is returned without any warm-start
// machinery — the cold control used by the equality test below.
func warmSpecDoc(withWarm bool) string {
	warmFlag, warmBlock := "", ""
	if withWarm {
		warmFlag = `"warm": true,`
		warmBlock = `"warmStart": {"prefixSec": 120},`
	}
	return fmt.Sprintf(`{
	  "name": "warm",
	  "base": %s,
	  "axes": [
	    {"name": "rate", "values": [
	      {"label": "low",  "patch": {"rate": {"mean": 3}}},
	      {"label": "high", "patch": {"rate": {"mean": 6}}}
	    ]},
	    {"name": "faults", %s "values": [
	      {"label": "off", "patch": {"control": {"faultFreeSec": 120}}},
	      {"label": "on",  "patch": {"control": {"acquireFailProb": 0.5, "faultFreeSec": 120}}}
	    ]}
	  ],
	  %s
	  "seeds": [1, 2]
	}`, testBase, warmFlag, warmBlock)
}

func TestWarmStartExpandSharesPrefixKeys(t *testing.T) {
	spec, err := ParseSpec([]byte(warmSpecDoc(true)))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 {
		t.Fatalf("jobs = %d, want 8", len(jobs))
	}
	// Jobs differing only along the warm axis converge on one prefix; the
	// cold axis and the seed both split prefixes.
	prefixOf := map[string]string{}
	for _, j := range jobs {
		if j.Prefix == nil || j.PrefixKey == "" {
			t.Fatalf("job %s has no resolved prefix", j.ID)
		}
		if j.PrefixKey == j.Key {
			t.Fatalf("job %s: prefix key equals job key (warm patch not dropped?)", j.ID)
		}
		coord := fmt.Sprintf("rate=%s/seed=%d", axisLabel(t, j.ID, "rate"), j.Seed)
		if prev, ok := prefixOf[coord]; ok {
			if prev != j.PrefixKey {
				t.Fatalf("%s: prefix keys diverge within a warm group", coord)
			}
		} else {
			prefixOf[coord] = j.PrefixKey
		}
	}
	if len(prefixOf) != 4 {
		t.Fatalf("distinct prefixes = %d, want 4 (rate x seed)", len(prefixOf))
	}
	seen := map[string]bool{}
	for _, k := range prefixOf {
		if seen[k] {
			t.Fatal("distinct warm groups share a prefix key")
		}
		seen[k] = true
	}
}

// axisLabel extracts an axis value label from a job ID like
// "rate=low/faults=on/seed=1".
func axisLabel(t *testing.T, id, axis string) string {
	t.Helper()
	for _, part := range bytes.Split([]byte(id), []byte("/")) {
		if kv := bytes.SplitN(part, []byte("="), 2); string(kv[0]) == axis {
			return string(kv[1])
		}
	}
	t.Fatalf("job %q has no %s coordinate", id, axis)
	return ""
}

// TestWarmStartMatchesColdRun is the warm-start acceptance criterion: a
// campaign executed with shared prefix checkpoints reports fork hits and
// produces per-job results and an aggregate CSV identical to the same grid
// simulated cold from zero.
func TestWarmStartMatchesColdRun(t *testing.T) {
	warmSpec, err := ParseSpec([]byte(warmSpecDoc(true)))
	if err != nil {
		t.Fatal(err)
	}
	coldSpec, err := ParseSpec([]byte(warmSpecDoc(false)))
	if err != nil {
		t.Fatal(err)
	}

	warm, err := (&Engine{Workers: 4}).Run(context.Background(), warmSpec)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := (&Engine{Workers: 4}).Run(context.Background(), coldSpec)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Total != 8 || warm.Executed != 8 || warm.Errors != 0 {
		t.Fatalf("warm report = %+v", warm)
	}
	if warm.ForkHits < 1 {
		t.Fatalf("warm run forked %d jobs, want >= 1", warm.ForkHits)
	}
	if cold.ForkHits != 0 {
		t.Fatalf("cold run reports %d fork hits", cold.ForkHits)
	}

	coldByID := map[string]Result{}
	for _, r := range cold.Results {
		coldByID[r.JobID] = r
	}
	forked := 0
	for _, w := range warm.Results {
		c, ok := coldByID[w.JobID]
		if !ok {
			t.Fatalf("warm job %s missing from cold run", w.JobID)
		}
		if w.Forked {
			forked++
		}
		// Everything except the Forked flag must agree.
		wc := w
		wc.Forked, wc.Cached = c.Forked, c.Cached
		if !reflect.DeepEqual(wc, c) {
			t.Errorf("job %s diverged:\nwarm %+v\ncold %+v", w.JobID, w, c)
		}
	}
	if forked != warm.ForkHits {
		t.Fatalf("forked results %d != reported fork hits %d", forked, warm.ForkHits)
	}

	var warmCSV, coldCSV bytes.Buffer
	if err := warm.WriteCSV(&warmCSV); err != nil {
		t.Fatal(err)
	}
	if err := cold.WriteCSV(&coldCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warmCSV.Bytes(), coldCSV.Bytes()) {
		t.Fatalf("aggregate CSV diverged:\n%s\n---\n%s", warmCSV.String(), coldCSV.String())
	}
}

// TestWarmStartJournalRecordsForks: journaled warm results keep the Forked
// flag, and a resumed campaign serves them as cache hits without re-forking.
func TestWarmStartJournalRecordsForks(t *testing.T) {
	spec, err := ParseSpec([]byte(warmSpecDoc(true)))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/journal.jsonl"
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := (&Engine{Workers: 2, Journal: j}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ForkHits < 1 {
		t.Fatalf("fork hits = %d", rep.ForkHits)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rep2, err := (&Engine{Workers: 2, Journal: j2}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CacheHits != 8 || rep2.Executed != 0 || rep2.ForkHits != 0 {
		t.Fatalf("resume report = %+v", rep2)
	}
	forked := 0
	for _, r := range rep2.Results {
		if r.Forked {
			forked++
		}
	}
	if forked != rep.ForkHits {
		t.Fatalf("journal kept %d forked flags, campaign forked %d", forked, rep.ForkHits)
	}
}

func TestWarmStartValidation(t *testing.T) {
	bad := []string{
		// Warm axis without a warmStart block.
		`{"name": "x", "base": ` + testBase + `,
		  "axes": [{"name": "a", "warm": true, "values": [{"label": "v", "patch": {}}]}]}`,
		// Prefix not a multiple of the interval.
		`{"name": "x", "base": ` + testBase + `, "warmStart": {"prefixSec": 90}}`,
		// Prefix at/after the horizon (0.1 h = 360 s).
		`{"name": "x", "base": ` + testBase + `, "warmStart": {"prefixSec": 360}}`,
		// Non-positive prefix.
		`{"name": "x", "base": ` + testBase + `, "warmStart": {"prefixSec": 0}}`,
	}
	for i, doc := range bad {
		if _, err := ParseSpec([]byte(doc)); err == nil {
			t.Errorf("case %d: bad warm-start spec accepted", i)
		}
	}
}
