package fabric

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dynamicdf/internal/obs"
	"dynamicdf/internal/sweep"
)

// Hub is the fabric coordinator: it owns the lease state machine for every
// running campaign and implements sweep.CampaignRunner, so a sweep.Server
// configured with a Hub serves the same HTTP API while executing jobs on
// attached workers instead of an in-process pool.
type Hub struct {
	cfg Config

	mu        sync.Mutex
	workers   map[string]*workerInfo
	campaigns []*campaign // creation order; lease scans follow it
	byID      map[string]*campaign
}

// NewHub returns an idle coordinator.
func NewHub(cfg Config) *Hub {
	return &Hub{
		cfg:     cfg.withDefaults(),
		workers: map[string]*workerInfo{},
		byID:    map[string]*campaign{},
	}
}

type workerInfo struct {
	lastSeen time.Time
}

type jobState uint8

const (
	jobQueued jobState = iota
	jobLeased
	jobDone
)

// slot is one job's lease state.
type slot struct {
	job         sweep.Job
	state       jobState
	attempts    int // leases granted
	failures    int // leases that died without a result
	worker      string
	expiry      time.Time
	notBefore   time.Time // backoff gate for requeued jobs
	lastErr     string
	quarantined bool
	result      *sweep.Result
}

// campaign is one spec's jobs moving through the lease state machine.
type campaign struct {
	id         string
	spec       *sweep.Spec
	jobs       []sweep.Job
	slots      []slot
	byKey      map[string]int
	journal    *sweep.Journal
	onProgress func(sweep.Progress)

	// prefixOwner maps a warm-start prefix key to the worker owning the
	// fork group; prefixEligible marks groups with >= 2 pending members
	// at campaign start (singletons run cold, as on the in-process pool).
	prefixOwner    map[string]string
	prefixEligible map[string]bool

	drained    bool
	canceled   bool
	journalErr error
	closed     bool
	done       chan struct{}

	cacheHits, executed, errors, forkHits, requeues, quarantined int
	lastJob                                                      string
}

// RunCampaign implements sweep.CampaignRunner: it registers the spec's
// jobs with the coordinator and blocks until attached workers complete
// them (or ctx is cancelled / opts.Drain closes). Journaled completions
// are served as cache hits without leasing; results ack into the journal
// exactly once. The returned report is aggregated in grid order, so its
// CSV is byte-identical to a single-pool run of the same spec.
func (h *Hub) RunCampaign(ctx context.Context, spec *sweep.Spec, opts sweep.RunOpts) (*sweep.Report, error) {
	id, err := spec.ID()
	if err != nil {
		return nil, err
	}
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	c := &campaign{
		id:             id,
		spec:           spec,
		jobs:           jobs,
		slots:          make([]slot, len(jobs)),
		byKey:          make(map[string]int, len(jobs)),
		journal:        opts.Journal,
		onProgress:     opts.OnProgress,
		prefixOwner:    map[string]string{},
		prefixEligible: map[string]bool{},
		done:           make(chan struct{}),
	}
	pendingPerPrefix := map[string]int{}
	for i := range jobs {
		c.slots[i].job = jobs[i]
		c.byKey[jobs[i].Key] = i
		if opts.Journal != nil {
			if r, ok := opts.Journal.Lookup(jobs[i].Key); ok {
				r.JobID = jobs[i].ID
				r.Group = jobs[i].Group
				r.Seed = jobs[i].Seed
				r.Cached = true
				c.slots[i].state = jobDone
				c.slots[i].result = &r
				c.cacheHits++
				continue
			}
		}
		if spec.WarmStart != nil && jobs[i].PrefixKey != "" {
			pendingPerPrefix[jobs[i].PrefixKey]++
		}
	}
	for key, n := range pendingPerPrefix {
		if n >= 2 {
			c.prefixEligible[key] = true
		}
	}

	h.mu.Lock()
	if _, dup := h.byID[id]; dup {
		h.mu.Unlock()
		return nil, fmt.Errorf("fabric: campaign %s already running", id)
	}
	h.campaigns = append(h.campaigns, c)
	h.byID[id] = c
	c.emitProgressLocked(h)
	c.maybeFinishLocked()
	h.mu.Unlock()

	ticker := time.NewTicker(h.cfg.TickEvery)
	defer ticker.Stop()
	defer h.remove(c)

	ctxDone := ctx.Done()
	drain := opts.Drain
	for {
		select {
		case <-c.done:
			return h.buildReport(ctx, c)
		case <-ctxDone:
			ctxDone = nil
			h.mu.Lock()
			c.canceled = true
			c.maybeFinishLocked()
			h.mu.Unlock()
		case <-drain:
			drain = nil
			h.mu.Lock()
			c.drained = true
			c.maybeFinishLocked()
			h.mu.Unlock()
		case <-ticker.C:
			h.Tick()
		}
	}
}

// Tick scans every campaign for expired leases. RunCampaign drives it on a
// timer; API calls (lease, heartbeat, ack) run the same scan inline, so
// ticking only matters when no traffic arrives.
func (h *Hub) Tick() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.expireLocked(h.cfg.Now())
}

// remove detaches a finished campaign; stale acks and heartbeats for it
// report unknown/expired from then on.
func (h *Hub) remove(c *campaign) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.byID, c.id)
	for i := range h.campaigns {
		if h.campaigns[i] == c {
			h.campaigns = append(h.campaigns[:i], h.campaigns[i+1:]...)
			break
		}
	}
}

// buildReport assembles the terminal report in grid order.
func (h *Hub) buildReport(ctx context.Context, c *campaign) (*sweep.Report, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	report := &sweep.Report{
		Name:        c.spec.Name,
		Total:       len(c.slots),
		CacheHits:   c.cacheHits,
		Executed:    c.executed,
		Errors:      c.errors,
		ForkHits:    c.forkHits,
		Requeues:    c.requeues,
		Quarantined: c.quarantined,
	}
	results := make([]*sweep.Result, len(c.slots))
	for i := range c.slots {
		if c.slots[i].result == nil {
			report.Missing++
			continue
		}
		results[i] = c.slots[i].result
		report.Results = append(report.Results, *c.slots[i].result)
	}
	report.Rows = sweep.Aggregate(c.jobs, results)
	switch {
	case c.journalErr != nil:
		return report, c.journalErr
	case ctx.Err() != nil:
		return report, fmt.Errorf("fabric: %d/%d jobs incomplete: %w", report.Missing, report.Total, ctx.Err())
	case report.Missing > 0:
		return report, fmt.Errorf("%w (%d/%d jobs incomplete)", sweep.ErrDrained, report.Missing, report.Total)
	}
	return report, nil
}

// Register records a worker. Workers re-register freely (e.g. after a
// crash under the same id); registration also counts as liveness.
func (h *Hub) Register(workerID string) RegisterInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.cfg.Now()
	if _, known := h.workers[workerID]; !known {
		h.emit(obs.Event{Type: obs.EventWorkerJoin, Detail: workerID})
	}
	h.touchLocked(workerID, now)
	return RegisterInfo{
		LeaseTTLMillis:  h.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMillis: (h.cfg.LeaseTTL / 3).Milliseconds(),
	}
}

// Lease grants the worker its next job, or returns nil when nothing is
// leasable right now (everything done, leased, backing off, or pinned to
// another live worker's fork group).
func (h *Hub) Lease(workerID string) *Lease {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.cfg.Now()
	h.touchLocked(workerID, now)
	h.expireLocked(now)
	for _, c := range h.campaigns {
		if c.closed || c.drained || c.canceled || c.journalErr != nil {
			continue
		}
		i := h.pickLocked(c, workerID, now)
		if i < 0 {
			continue
		}
		s := &c.slots[i]
		s.state = jobLeased
		s.attempts++
		s.worker = workerID
		s.expiry = now.Add(h.cfg.LeaseTTL)
		grant := &Lease{
			Campaign:  c.id,
			JobID:     s.job.ID,
			Key:       s.job.Key,
			Group:     s.job.Group,
			Seed:      s.job.Seed,
			Attempt:   s.attempts,
			TTLMillis: h.cfg.LeaseTTL.Milliseconds(),
			Scenario:  append([]byte(nil), s.job.Canonical...),
		}
		if pk := s.job.PrefixKey; pk != "" && c.prefixEligible[pk] && c.spec.WarmStart != nil {
			c.prefixOwner[pk] = workerID
			if canonical, err := s.job.Prefix.CanonicalJSON(); err == nil {
				grant.Prefix = canonical
				grant.PrefixKey = pk
				grant.PrefixSec = c.spec.WarmStart.PrefixSec
			}
		}
		grant.TraceID = c.id
		grant.SpanID = spanID(s.job.Key, s.attempts)
		h.emit(obs.Event{Type: obs.EventLease, N: s.attempts, Detail: s.job.ID + " -> " + workerID,
			Trace: c.id, Span: grant.SpanID, Worker: workerID})
		if m := h.cfg.Metrics; m != nil {
			m.LeasesTotal.Inc()
			m.LeasesActive.Add(1)
		}
		c.emitProgressLocked(h)
		return grant
	}
	return nil
}

// pickLocked selects the worker's next slot in deterministic grid order,
// honoring prefix affinity: first the worker's own fork-group jobs, then
// unpinned jobs (claiming their group), then groups whose owner is
// presumed dead. Jobs pinned to another live worker wait — affinity beats
// stealing, because moving the job means re-simulating the prefix.
func (h *Hub) pickLocked(c *campaign, workerID string, now time.Time) int {
	fallback := -1
	for i := range c.slots {
		s := &c.slots[i]
		if s.state != jobQueued || now.Before(s.notBefore) {
			continue
		}
		pk := s.job.PrefixKey
		if pk == "" || !c.prefixEligible[pk] {
			if fallback < 0 {
				fallback = i
			}
			continue
		}
		owner, owned := c.prefixOwner[pk]
		switch {
		case owned && owner == workerID:
			return i // own group: take it immediately
		case !owned, h.workerDeadLocked(owner, now):
			if fallback < 0 {
				fallback = i
			}
		}
	}
	return fallback
}

// Heartbeat renews the worker's held leases and returns the refs it no
// longer holds (expired, re-leased elsewhere, completed, or from a
// finished campaign) so the worker can abandon those runs.
func (h *Hub) Heartbeat(workerID string, held []LeaseRef) (expired []LeaseRef) {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.cfg.Now()
	h.touchLocked(workerID, now)
	h.expireLocked(now)
	if m := h.cfg.Metrics; m != nil {
		m.Heartbeats.Inc()
	}
	h.emit(obs.Event{Type: obs.EventHeartbeat, N: len(held), Detail: workerID})
	for _, ref := range held {
		c := h.byID[ref.Campaign]
		if c == nil {
			expired = append(expired, ref)
			continue
		}
		i, ok := c.byKey[ref.Key]
		if !ok {
			expired = append(expired, ref)
			continue
		}
		s := &c.slots[i]
		if s.state == jobLeased && s.worker == workerID && !c.canceled {
			s.expiry = now.Add(h.cfg.LeaseTTL)
			continue
		}
		expired = append(expired, ref)
	}
	return expired
}

// Ack records one job result idempotently: the first delivery for a key
// wins (and is journaled); repeats — from retries, duplicated deliveries,
// or stale workers whose lease already expired — are counted and dropped.
// Results are deterministic per key, so any delivery carries the same
// payload and accepting the first preserves exactly-once aggregation.
func (h *Hub) Ack(campaignID string, res sweep.Result) string {
	return h.AckSpanned(campaignID, "", "", res)
}

// AckSpanned is Ack carrying the delivering worker's identity and the
// lease's span id (both optional), so the coordinator's result-ack event
// closes the same span the worker's job-run events opened.
func (h *Hub) AckSpanned(campaignID, worker, span string, res sweep.Result) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.cfg.Now()
	h.expireLocked(now)
	c := h.byID[campaignID]
	if c == nil {
		return AckUnknown
	}
	i, ok := c.byKey[res.Key]
	if !ok {
		return AckUnknown
	}
	s := &c.slots[i]
	if span == "" {
		span = spanID(s.job.Key, s.attempts)
	}
	if s.state == jobDone {
		if m := h.cfg.Metrics; m != nil {
			m.DupResults.Inc()
		}
		h.emit(obs.Event{Type: obs.EventResultDup, Detail: s.job.ID,
			Trace: c.id, Span: span, Worker: worker})
		return AckDuplicate
	}
	// Trust the coordinator's identity for the slot, not the wire's.
	res.JobID = s.job.ID
	res.Group = s.job.Group
	res.Seed = s.job.Seed
	res.Cached = false
	if c.journal != nil {
		if err := c.journal.Append(res); err != nil {
			if c.journalErr == nil {
				c.journalErr = err
			}
			c.maybeFinishLocked()
			return AckUnknown
		}
	}
	if s.state == jobLeased {
		if m := h.cfg.Metrics; m != nil {
			m.LeasesActive.Add(-1)
		}
	}
	if worker == "" {
		worker = s.worker
	}
	h.emit(obs.Event{Type: obs.EventResultAck, Detail: s.job.ID + " <- " + worker,
		Trace: c.id, Span: span, Worker: worker})
	s.state = jobDone
	s.worker = ""
	s.result = &res
	c.executed++
	if res.Error != "" {
		c.errors++
	}
	if res.Forked {
		c.forkHits++
	}
	c.lastJob = res.JobID
	c.emitProgressLocked(h)
	c.maybeFinishLocked()
	return AckAccepted
}

// expireLocked advances the lease state machine to now: dead leases
// requeue with exponential backoff or quarantine their job once the
// failure cap is reached.
func (h *Hub) expireLocked(now time.Time) {
	for _, c := range h.campaigns {
		dirty := false
		for i := range c.slots {
			s := &c.slots[i]
			if s.state != jobLeased || !now.After(s.expiry) {
				continue
			}
			dirty = true
			s.failures++
			s.lastErr = fmt.Sprintf("lease %d expired on worker %s", s.attempts, s.worker)
			span := spanID(s.job.Key, s.attempts)
			h.emit(obs.Event{Type: obs.EventLeaseExpire, N: s.failures,
				Detail: s.job.ID + " on " + s.worker,
				Trace:  c.id, Span: span, Worker: s.worker})
			if m := h.cfg.Metrics; m != nil {
				m.LeaseExpiries.Inc()
				m.LeasesActive.Add(-1)
			}
			if s.failures >= h.cfg.MaxLeaseFailures {
				// Poison: retire the job with its history as the error.
				// Deliberately NOT journaled — lease failures are
				// operational, not deterministic, so a resumed campaign
				// retries the job.
				s.state = jobDone
				s.quarantined = true
				res := sweep.Result{
					JobID: s.job.ID, Key: s.job.Key, Group: s.job.Group, Seed: s.job.Seed,
					Error: fmt.Sprintf("quarantined after %d failed leases: %s", s.failures, s.lastErr),
				}
				s.result = &res
				c.quarantined++
				c.errors++
				h.emit(obs.Event{Type: obs.EventQuarantine, N: s.failures, Detail: s.job.ID,
					Trace: c.id, Span: span})
				if m := h.cfg.Metrics; m != nil {
					m.Quarantined.Inc()
				}
			} else {
				backoff := h.cfg.BackoffBase << (s.failures - 1)
				if backoff > h.cfg.BackoffMax || backoff <= 0 {
					backoff = h.cfg.BackoffMax
				}
				s.state = jobQueued
				s.worker = ""
				s.notBefore = now.Add(backoff)
				c.requeues++
				h.emit(obs.Event{Type: obs.EventRequeue, N: s.failures, Detail: s.job.ID,
					Trace: c.id, Span: span})
				if m := h.cfg.Metrics; m != nil {
					m.Requeues.Inc()
				}
			}
		}
		if dirty {
			c.emitProgressLocked(h)
			c.maybeFinishLocked()
		}
	}
	if m := h.cfg.Metrics; m != nil {
		live := 0
		for _, w := range h.workers {
			if !now.After(w.lastSeen.Add(h.cfg.LeaseTTL)) {
				live++
			}
		}
		m.WorkersLive.Set(float64(live))
	}
}

// touchLocked records worker liveness.
func (h *Hub) touchLocked(workerID string, now time.Time) {
	w := h.workers[workerID]
	if w == nil {
		w = &workerInfo{}
		h.workers[workerID] = w
	}
	w.lastSeen = now
}

// workerDeadLocked presumes a worker dead when it has not been seen within
// one lease TTL.
func (h *Hub) workerDeadLocked(workerID string, now time.Time) bool {
	w := h.workers[workerID]
	return w == nil || now.After(w.lastSeen.Add(h.cfg.LeaseTTL))
}

// maybeFinishLocked closes the campaign when every slot is terminal, or —
// after drain/cancel/journal failure — when no leases remain in flight
// (drain lets in-flight jobs finish; cancel abandons them immediately).
func (c *campaign) maybeFinishLocked() {
	if c.closed {
		return
	}
	leased, done := 0, 0
	for i := range c.slots {
		switch c.slots[i].state {
		case jobLeased:
			leased++
		case jobDone:
			done++
		}
	}
	complete := done == len(c.slots)
	aborted := c.canceled || c.journalErr != nil
	drainedOut := c.drained && leased == 0
	if complete || aborted || drainedOut {
		c.closed = true
		close(c.done)
	}
}

// emitProgressLocked publishes a progress snapshot. The callback runs
// under the hub lock and must not call back into the hub (the sweep
// server's sink only touches its own state).
func (c *campaign) emitProgressLocked(h *Hub) {
	if c.onProgress == nil {
		return
	}
	running, live := 0, 0
	for i := range c.slots {
		if c.slots[i].state == jobLeased {
			running++
		}
	}
	now := h.cfg.Now()
	for _, w := range h.workers {
		if !now.After(w.lastSeen.Add(h.cfg.LeaseTTL)) {
			live++
		}
	}
	c.onProgress(sweep.Progress{
		Total:       len(c.slots),
		Done:        c.cacheHits + c.executed + c.quarantined,
		Running:     running,
		CacheHits:   c.cacheHits,
		Executed:    c.executed,
		Errors:      c.errors,
		ForkHits:    c.forkHits,
		Requeues:    c.requeues,
		Quarantined: c.quarantined,
		Workers:     live,
		LastJob:     c.lastJob,
	})
}

// emit forwards a coordinator event to the tracer (nil-safe).
func (h *Hub) emit(ev obs.Event) {
	h.cfg.Tracer.Emit(ev)
}

// spanID names one job attempt within a campaign trace: a short prefix of
// the job's content key plus the attempt ordinal. Keys are sha256 hex, so
// twelve characters stay unique within any real campaign.
func spanID(key string, attempt int) string {
	if len(key) > 12 {
		key = key[:12]
	}
	return fmt.Sprintf("%s#%d", key, attempt)
}
