// Package fabric is the distributed sweep fabric: it scales the campaign
// engine in internal/sweep beyond one in-process pool by splitting it into
// a lease-based coordinator (Hub) and any number of workers that attach
// over HTTP (dfserve -worker).
//
// The coordinator hands out content-addressed sweep jobs under TTL leases
// renewed by worker heartbeats. A lease that expires without renewal sends
// its job back to the queue with capped exponential backoff; a job whose
// leases keep dying is quarantined as poison, its last error recorded in
// the campaign report. Results are acked idempotently by job key — the
// first delivery wins, duplicates are counted and dropped — and appended
// to the campaign journal exactly once, so the aggregated CSV is
// byte-identical to a single-pool run regardless of worker topology,
// crashes, stale deliveries, or retries.
//
// Warm-start fork groups schedule with prefix affinity: jobs sharing a
// checkpointed prefix lease to the worker that owns the group, and only
// move when that worker is presumed dead (no heartbeat within one TTL),
// in which case the new owner re-runs the prefix (or the job simply runs
// cold) — affinity is an optimization, never a correctness dependency.
//
// The package's own failure modes are tested the way the simulator's are:
// Faults is a deterministic, seeded harness injecting worker crashes,
// hangs, heartbeat loss, slow workers, and dropped or duplicated result
// deliveries, driven by an in-process multi-worker chaos test that asserts
// campaign output equals the fault-free single-pool baseline byte for
// byte.
package fabric

import (
	"encoding/json"
	"time"

	"dynamicdf/internal/obs"
)

// Config tunes the coordinator's lease state machine.
type Config struct {
	// LeaseTTL is how long a lease survives without a heartbeat
	// (default 15s). Workers are told to heartbeat at a third of it.
	LeaseTTL time.Duration
	// MaxLeaseFailures quarantines a job after this many dead leases
	// (default 3).
	MaxLeaseFailures int
	// BackoffBase is the requeue delay after the first dead lease,
	// doubling per failure (default 250ms).
	BackoffBase time.Duration
	// BackoffMax caps the requeue delay (default 10s).
	BackoffMax time.Duration
	// TickEvery bounds how stale lease expiry can go with no API traffic:
	// every running campaign scans for expired leases at least this often
	// (default LeaseTTL/4, floor 10ms).
	TickEvery time.Duration
	// Now supplies the coordinator clock (default time.Now); tests inject
	// a fake clock to drive expiry deterministically.
	Now func() time.Time
	// Tracer, when non-nil, receives lease/heartbeat/requeue/quarantine
	// events.
	Tracer *obs.Tracer
	// Metrics, when non-nil, exports the fabric_* gauge and counter set.
	Metrics *obs.FabricMetrics
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.MaxLeaseFailures <= 0 {
		c.MaxLeaseFailures = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 250 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 10 * time.Second
	}
	if c.TickEvery <= 0 {
		c.TickEvery = c.LeaseTTL / 4
		if c.TickEvery < 10*time.Millisecond {
			c.TickEvery = 10 * time.Millisecond
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// RegisterInfo is the coordinator's reply to a worker registration: the
// lease TTL the worker's jobs live under and the cadence it must
// heartbeat at to keep them.
type RegisterInfo struct {
	LeaseTTLMillis  int64 `json:"leaseTtlMillis"`
	HeartbeatMillis int64 `json:"heartbeatMillis"`
}

// LeaseTTL returns the lease TTL as a duration.
func (ri RegisterInfo) LeaseTTL() time.Duration {
	return time.Duration(ri.LeaseTTLMillis) * time.Millisecond
}

// HeartbeatEvery returns the heartbeat cadence as a duration.
func (ri RegisterInfo) HeartbeatEvery() time.Duration {
	return time.Duration(ri.HeartbeatMillis) * time.Millisecond
}

// Lease is one job granted to a worker: everything needed to rebuild and
// run the job remotely, plus the lease bookkeeping the worker echoes back
// in heartbeats and acks. Scenario and Prefix are canonical scenario JSON
// (the same bytes the job key hashes).
type Lease struct {
	Campaign  string          `json:"campaign"`
	JobID     string          `json:"jobId"`
	Key       string          `json:"key"`
	Group     string          `json:"group"`
	Seed      int64           `json:"seed"`
	Attempt   int             `json:"attempt"`
	TTLMillis int64           `json:"ttlMillis"`
	Scenario  json.RawMessage `json:"scenario"`
	Prefix    json.RawMessage `json:"prefix,omitempty"`
	PrefixKey string          `json:"prefixKey,omitempty"`
	PrefixSec int64           `json:"prefixSec,omitempty"`
	// TraceID/SpanID are the campaign trace context the coordinator injects:
	// the worker stamps them (plus its own id) onto every event its tracer
	// emits while running the job, and echoes the span in its result
	// delivery, so dftrace can stitch coordinator and worker captures into
	// one causally ordered campaign timeline.
	TraceID string `json:"traceId,omitempty"`
	SpanID  string `json:"spanId,omitempty"`
}

// LeaseRef names one held lease in heartbeats: the campaign plus the
// job's content key.
type LeaseRef struct {
	Campaign string `json:"campaign"`
	Key      string `json:"key"`
}

// Ack statuses returned by the coordinator's result endpoint.
const (
	// AckAccepted: first delivery for the job; recorded and journaled.
	AckAccepted = "acked"
	// AckDuplicate: the job already completed; delivery ignored.
	AckDuplicate = "duplicate"
	// AckUnknown: no such campaign or job (finished campaign, foreign
	// key); delivery ignored.
	AckUnknown = "unknown"
)
