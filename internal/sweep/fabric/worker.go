package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dynamicdf/internal/obs"
	"dynamicdf/internal/scenario"
	"dynamicdf/internal/state"
	"dynamicdf/internal/sweep"
)

// ErrCrashed is returned by Worker.Run when an injected crash fault killed
// the worker mid-job. Real deployments never see it; chaos harnesses
// respawn the worker.
var ErrCrashed = errors.New("fabric: worker crashed (injected fault)")

// WorkerConfig tunes one fabric worker.
type WorkerConfig struct {
	// ID names the worker to the coordinator (unique per process).
	ID string
	// Client reaches the coordinator.
	Client *Client
	// Slots bounds concurrently leased jobs (default 1).
	Slots int
	// PollInterval is the idle re-poll cadence when no work is available
	// (default 200ms).
	PollInterval time.Duration
	// Faults, when non-nil, injects deterministic fabric failures (tests
	// only).
	Faults *Faults
	// Tracer and Gauges attach to every job's sim engine, exactly as on
	// the in-process pool.
	Tracer *obs.Tracer
	Gauges *obs.RunGauges
	// Logf, when non-nil, receives worker lifecycle lines.
	Logf func(format string, args ...interface{})
}

// Worker leases jobs from a coordinator, runs them with the same execution
// semantics as the in-process pool (sweep.ExecuteJob over the canonical
// scenario bytes), and acks results idempotently — re-sending until an ack
// lands, so dropped deliveries or coordinator restarts cannot lose or
// double-count a completion. A heartbeat loop renews every held lease at
// the cadence the coordinator dictates; when a heartbeat response revokes
// a lease (expired, re-assigned, campaign gone) the matching run is
// cancelled. Warm-start prefixes are simulated once per fork group per
// worker and forked per job.
type Worker struct {
	cfg WorkerConfig

	mu       sync.Mutex
	held     map[LeaseRef]context.CancelFunc
	prefixes map[string]*prefixOnce
}

// prefixOnce checkpoints one fork group's prefix at most once per worker.
type prefixOnce struct {
	once sync.Once
	snap *state.Snapshot
}

// NewWorker returns an idle worker.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	return &Worker{
		cfg:      cfg,
		held:     map[LeaseRef]context.CancelFunc{},
		prefixes: map[string]*prefixOnce{},
	}
}

// Run registers with the coordinator and processes jobs until ctx is
// cancelled (returning ctx.Err()) or an injected crash fault fires
// (returning ErrCrashed).
func (w *Worker) Run(ctx context.Context) error {
	info, err := w.cfg.Client.Register(ctx, w.cfg.ID)
	if err != nil {
		return fmt.Errorf("fabric: worker %s register: %w", w.cfg.ID, err)
	}
	w.logf("worker %s registered (lease TTL %s, heartbeat %s)",
		w.cfg.ID, info.LeaseTTL(), info.HeartbeatEvery())

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		crashOnce sync.Once
		crashErr  error
	)
	crash := func(err error) {
		crashOnce.Do(func() {
			crashErr = err
			cancel()
		})
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(info.HeartbeatEvery())
		defer t.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-t.C:
				w.heartbeat(runCtx)
			}
		}
	}()

	for s := 0; s < w.cfg.Slots; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for runCtx.Err() == nil {
				lease, err := w.cfg.Client.Lease(runCtx, w.cfg.ID)
				if err != nil || lease == nil {
					sleepCtx(runCtx, w.cfg.PollInterval)
					continue
				}
				if err := w.process(runCtx, lease); err != nil {
					crash(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if crashErr != nil {
		return crashErr
	}
	return ctx.Err()
}

// heartbeat renews every held lease and cancels runs whose leases the
// coordinator revoked.
func (w *Worker) heartbeat(ctx context.Context) {
	w.mu.Lock()
	held := make([]LeaseRef, 0, len(w.held))
	for ref := range w.held {
		held = append(held, ref)
	}
	w.mu.Unlock()
	expired, err := w.cfg.Client.Heartbeat(ctx, w.cfg.ID, held)
	if err != nil {
		return // transient; the next tick retries, the TTL bounds the damage
	}
	for _, ref := range expired {
		w.mu.Lock()
		cancel := w.held[ref]
		delete(w.held, ref)
		w.mu.Unlock()
		if cancel != nil {
			w.logf("worker %s: lease %s revoked, abandoning run", w.cfg.ID, ref.Key[:12])
			cancel()
		}
	}
}

func (w *Worker) hold(ref LeaseRef, cancel context.CancelFunc) {
	w.mu.Lock()
	w.held[ref] = cancel
	w.mu.Unlock()
}

// release stops renewing (and stops tracking) a lease.
func (w *Worker) release(ref LeaseRef) {
	w.mu.Lock()
	delete(w.held, ref)
	w.mu.Unlock()
}

// process runs one leased job end to end. The only non-nil return is a
// crash fault; every other failure becomes a deterministic job error or a
// silently abandoned lease (the coordinator's TTL recovers it).
func (w *Worker) process(ctx context.Context, lease *Lease) error {
	f := w.cfg.Faults
	if f.Crash(lease.Key, lease.Attempt) {
		w.logf("worker %s: CRASH fault on %s attempt %d", w.cfg.ID, lease.JobID, lease.Attempt)
		return ErrCrashed
	}
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ref := LeaseRef{Campaign: lease.Campaign, Key: lease.Key}
	w.hold(ref, cancel)
	held := true
	defer func() {
		if held {
			w.release(ref)
		}
	}()
	if f.HeartbeatLoss(lease.Key, lease.Attempt) {
		// Stop renewing: the lease expires server-side mid-run, the job is
		// requeued elsewhere, and this worker's eventual delivery exercises
		// the idempotent re-ack path.
		w.release(ref)
		held = false
	}
	if d, ok := f.Slow(lease.Key, lease.Attempt); ok {
		if !sleepCtx(jobCtx, d) {
			return nil
		}
	}

	res := w.runLease(jobCtx, lease)
	if res == nil {
		return nil // cancelled: shutdown or lease revoked; no ack
	}

	if d, ok := f.Hang(lease.Key, lease.Attempt); ok {
		// Finished but comatose: deliver only after the lease has long
		// expired.
		if held {
			w.release(ref)
			held = false
		}
		if !sleepCtx(ctx, d) {
			return nil
		}
	}
	w.deliver(ctx, lease, *res)
	return nil
}

// runLease rebuilds the job from the lease and executes it; nil means the
// run was cancelled before completing. The worker's tracer is stamped with
// the lease's trace context so every event this run emits carries the
// campaign trace id, the job's span, and this worker's identity — the
// capture stitches against the coordinator's by span.
func (w *Worker) runLease(ctx context.Context, lease *Lease) *sweep.Result {
	job, err := JobFromLease(lease)
	if err != nil {
		return &sweep.Result{JobID: lease.JobID, Key: lease.Key, Group: lease.Group,
			Seed: lease.Seed, Error: err.Error()}
	}
	var snap *state.Snapshot
	if job.Prefix != nil && lease.PrefixSec > 0 && lease.PrefixKey != "" {
		snap = w.prefixSnapshot(ctx, lease.PrefixKey, job.Prefix, lease.PrefixSec)
	}
	tracer := w.cfg.Tracer.With(lease.TraceID, lease.SpanID, w.cfg.ID)
	tracer.Emit(obs.Event{Type: obs.EventSweepJob, Phase: obs.PhaseStart,
		N: lease.Attempt, Detail: job.ID})
	res, canceled := sweep.ExecuteJob(ctx, job, snap, tracer, w.cfg.Gauges, lease.Attempt)
	if canceled {
		return nil
	}
	return &res
}

// prefixSnapshot simulates the fork group's prefix at most once on this
// worker and returns its checkpoint (nil on any failure: the job runs
// cold).
func (w *Worker) prefixSnapshot(ctx context.Context, key string, sc *scenario.Scenario, untilSec int64) *state.Snapshot {
	w.mu.Lock()
	p := w.prefixes[key]
	if p == nil {
		p = &prefixOnce{}
		w.prefixes[key] = p
	}
	w.mu.Unlock()
	p.once.Do(func() { p.snap = sweep.RunPrefix(ctx, sc, untilSec) })
	return p.snap
}

// JobFromLease reconstructs the runnable job from a lease's canonical
// scenario payloads.
func JobFromLease(l *Lease) (sweep.Job, error) {
	sc, err := scenario.ParseBytes(l.Scenario)
	if err != nil {
		return sweep.Job{}, fmt.Errorf("fabric: lease %s scenario: %w", l.JobID, err)
	}
	job := sweep.Job{
		ID: l.JobID, Group: l.Group, Seed: l.Seed, Key: l.Key,
		Scenario: sc, Canonical: l.Scenario, PrefixKey: l.PrefixKey,
	}
	if len(l.Prefix) > 0 {
		psc, err := scenario.ParseBytes(l.Prefix)
		if err != nil {
			return sweep.Job{}, fmt.Errorf("fabric: lease %s prefix: %w", l.JobID, err)
		}
		job.Prefix = psc
	}
	return job, nil
}

// deliver acks the result, retrying until an ack lands or ctx dies. A
// drop fault consumes the first delivery; a dup fault sends the result
// twice — both converge because the coordinator acks idempotently.
func (w *Worker) deliver(ctx context.Context, lease *Lease, res sweep.Result) {
	dropped := w.cfg.Faults.DropResult(lease.Key, lease.Attempt)
	for try := 0; ; try++ {
		if try == 0 && dropped {
			w.logf("worker %s: DROP fault on %s, re-acking", w.cfg.ID, lease.JobID)
			continue // first delivery lost in transit
		}
		status, err := w.cfg.Client.SendResultSpanned(ctx, lease.Campaign, w.cfg.ID, lease.SpanID, res)
		if err == nil {
			if status == AckDuplicate {
				w.logf("worker %s: %s already completed elsewhere", w.cfg.ID, lease.JobID)
			}
			break
		}
		if ctx.Err() != nil || !sleepCtx(ctx, 20*time.Millisecond) {
			return
		}
	}
	if w.cfg.Faults.DupResult(lease.Key, lease.Attempt) {
		_, _ = w.cfg.Client.SendResultSpanned(ctx, lease.Campaign, w.cfg.ID, lease.SpanID, res) // duplicated delivery
	}
}

func (w *Worker) logf(format string, args ...interface{}) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}
