package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Faults deterministically injects fabric-level failures into workers,
// mirroring the simulator's own seeded fault-injection philosophy: every
// decision is a pure hash of (seed, fault kind, job key, lease attempt),
// so a given attempt's fate is fixed by the seed alone — independent of
// wall-clock timing, goroutine scheduling, or which worker drew the lease.
// That makes chaos tests reproducible: the same seed always crashes the
// same attempts, duplicates the same deliveries, and mutes the same
// heartbeats, while the campaign's aggregate output must remain
// byte-identical to a fault-free run.
//
// Because decisions key on the attempt number, a job whose attempt N
// crashes will draw a fresh decision for attempt N+1; with any
// probability below 1 every job eventually completes, which is what lets
// the chaos test assert exact output equality.
type Faults struct {
	// Seed fixes every decision below.
	Seed int64
	// CrashProb kills the whole worker at lease receipt: nothing runs, no
	// result is delivered, every lease the worker held dies with it.
	CrashProb float64
	// HangProb finishes the job but delivers only after HangFor — long
	// after the lease expired and the job was requeued — exercising the
	// idempotent late re-ack path.
	HangProb float64
	HangFor  time.Duration
	// SlowProb delays the run by SlowFor before starting.
	SlowProb float64
	SlowFor  time.Duration
	// DropResultProb loses the first result delivery in transit; the
	// worker re-acks.
	DropResultProb float64
	// DupResultProb delivers the result twice.
	DupResultProb float64
	// HeartbeatLossProb stops renewing the job's lease mid-run: the lease
	// expires server-side while the run continues to completion.
	HeartbeatLossProb float64
}

// roll returns a uniform [0,1) draw fixed by (seed, kind, key, attempt).
func (f *Faults) roll(kind, key string, attempt int) float64 {
	h := sha256.New()
	fmt.Fprintf(h, "fabric-fault\n%d\n%s\n%s\n%d", f.Seed, kind, key, attempt)
	sum := h.Sum(nil)
	return float64(binary.BigEndian.Uint64(sum[:8])) / math.MaxUint64
}

// Crash reports whether this lease attempt kills the worker.
func (f *Faults) Crash(key string, attempt int) bool {
	return f != nil && f.roll("crash", key, attempt) < f.CrashProb
}

// Hang reports whether (and for how long) this attempt's delivery is
// delayed past lease expiry.
func (f *Faults) Hang(key string, attempt int) (time.Duration, bool) {
	if f == nil || f.roll("hang", key, attempt) >= f.HangProb {
		return 0, false
	}
	return f.HangFor, true
}

// Slow reports whether (and by how much) this attempt's start is delayed.
func (f *Faults) Slow(key string, attempt int) (time.Duration, bool) {
	if f == nil || f.roll("slow", key, attempt) >= f.SlowProb {
		return 0, false
	}
	return f.SlowFor, true
}

// DropResult reports whether this attempt's first delivery is lost.
func (f *Faults) DropResult(key string, attempt int) bool {
	return f != nil && f.roll("drop", key, attempt) < f.DropResultProb
}

// DupResult reports whether this attempt's result is delivered twice.
func (f *Faults) DupResult(key string, attempt int) bool {
	return f != nil && f.roll("dup", key, attempt) < f.DupResultProb
}

// HeartbeatLoss reports whether this attempt's lease renewal goes mute.
func (f *Faults) HeartbeatLoss(key string, attempt int) bool {
	return f != nil && f.roll("heartbeat-loss", key, attempt) < f.HeartbeatLossProb
}
