package fabric

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dynamicdf/internal/sweep"
)

// testBase is a small 2-PE scenario that runs in milliseconds.
const testBase = `{
  "graph": {
    "pes": [
      {"name": "src", "alternates": [{"name": "e", "value": 1, "cost": 0.2, "selectivity": 1}]},
      {"name": "work", "alternates": [
        {"name": "full", "value": 1.0, "cost": 1.0, "selectivity": 1},
        {"name": "lite", "value": 0.8, "cost": 0.5, "selectivity": 1}
      ]}
    ],
    "edges": [["src", "work"]]
  },
  "rate": {"kind": "constant", "mean": 5},
  "horizonHours": 0.1,
  "seed": 1
}`

// fakeClock drives the coordinator's lease state machine deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func parseSpec(t *testing.T, doc string) *sweep.Spec {
	t.Helper()
	s, err := sweep.ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// singleJobSpec expands to exactly one job.
func singleJobSpec(t *testing.T) *sweep.Spec {
	return parseSpec(t, fmt.Sprintf(`{"name": "one", "base": %s, "seeds": [1]}`, testBase))
}

// warmGroupSpec expands to one warm-start fork group of two jobs (or two
// groups when two seeds are given).
func warmGroupSpec(t *testing.T, seeds string) *sweep.Spec {
	return parseSpec(t, fmt.Sprintf(`{
	  "name": "warm",
	  "base": %s,
	  "axes": [{"name": "faults", "warm": true, "values": [
	    {"label": "off", "patch": {"control": {"faultFreeSec": 120}}},
	    {"label": "on",  "patch": {"control": {"acquireFailProb": 0.5, "faultFreeSec": 120}}}
	  ]}],
	  "warmStart": {"prefixSec": 120},
	  "seeds": [%s]
	}`, testBase, seeds))
}

// startCampaign launches RunCampaign in the background and returns its
// outcome channel.
func startCampaign(t *testing.T, h *Hub, spec *sweep.Spec, opts sweep.RunOpts) <-chan struct {
	report *sweep.Report
	err    error
} {
	t.Helper()
	out := make(chan struct {
		report *sweep.Report
		err    error
	}, 1)
	go func() {
		rep, err := h.RunCampaign(context.Background(), spec, opts)
		out <- struct {
			report *sweep.Report
			err    error
		}{rep, err}
	}()
	// Wait for the campaign to become leasable.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h.mu.Lock()
		ready := len(h.campaigns) > 0
		h.mu.Unlock()
		if ready || time.Now().After(deadline) {
			return out
		}
		time.Sleep(time.Millisecond)
	}
}

func waitReport(t *testing.T, ch <-chan struct {
	report *sweep.Report
	err    error
}) (*sweep.Report, error) {
	t.Helper()
	select {
	case r := <-ch:
		return r.report, r.err
	case <-time.After(10 * time.Second):
		t.Fatal("campaign did not finish")
		return nil, nil
	}
}

func testHub(clock *fakeClock, maxFailures int) *Hub {
	return NewHub(Config{
		LeaseTTL:         time.Minute,
		MaxLeaseFailures: maxFailures,
		BackoffBase:      10 * time.Second,
		BackoffMax:       40 * time.Second,
		Now:              clock.Now,
	})
}

// TestLeaseExpiryRequeuesExactlyOnce: a lease that dies sends its job back
// to the queue exactly once, gated by backoff, and the original holder
// learns via heartbeat that the lease is gone.
func TestLeaseExpiryRequeuesExactlyOnce(t *testing.T) {
	clock := newFakeClock()
	h := testHub(clock, 3)
	ch := startCampaign(t, h, singleJobSpec(t), sweep.RunOpts{})

	h.Register("A")
	h.Register("B")
	lease := h.Lease("A")
	if lease == nil {
		t.Fatal("worker A got no lease")
	}
	if lease.Attempt != 1 {
		t.Fatalf("first lease attempt = %d, want 1", lease.Attempt)
	}
	if l := h.Lease("B"); l != nil {
		t.Fatalf("job double-leased while A holds it: %+v", l)
	}

	// TTL elapses without a heartbeat: exactly one requeue, backoff-gated.
	clock.Advance(61 * time.Second)
	h.Tick()
	h.Tick() // a second scan must not double-count the expiry
	if l := h.Lease("B"); l != nil {
		t.Fatalf("requeued job leased before backoff elapsed: %+v", l)
	}
	clock.Advance(10 * time.Second)
	lease2 := h.Lease("B")
	if lease2 == nil {
		t.Fatal("job not leasable after backoff")
	}
	if lease2.Attempt != 2 {
		t.Fatalf("re-lease attempt = %d, want 2", lease2.Attempt)
	}

	// The original holder's heartbeat reports the lease revoked.
	ref := LeaseRef{Campaign: lease.Campaign, Key: lease.Key}
	expired := h.Heartbeat("A", []LeaseRef{ref})
	if len(expired) != 1 || expired[0] != ref {
		t.Fatalf("heartbeat from the dead leaseholder returned %v, want [%v]", expired, ref)
	}

	if st := h.Ack(lease2.Campaign, sweep.Result{Key: lease2.Key, Theta: 1}); st != AckAccepted {
		t.Fatalf("ack status %q, want %q", st, AckAccepted)
	}
	rep, err := waitReport(t, ch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requeues != 1 || rep.Executed != 1 || rep.Errors != 0 || rep.Quarantined != 0 {
		t.Fatalf("report requeues=%d executed=%d errors=%d quarantined=%d, want 1/1/0/0",
			rep.Requeues, rep.Executed, rep.Errors, rep.Quarantined)
	}
}

// TestHeartbeatRenewalPreventsExpiry: a lease renewed within its TTL never
// expires, across arbitrarily many TTL multiples.
func TestHeartbeatRenewalPreventsExpiry(t *testing.T) {
	clock := newFakeClock()
	h := testHub(clock, 3)
	ch := startCampaign(t, h, singleJobSpec(t), sweep.RunOpts{})

	h.Register("A")
	h.Register("B")
	lease := h.Lease("A")
	if lease == nil {
		t.Fatal("no lease")
	}
	ref := LeaseRef{Campaign: lease.Campaign, Key: lease.Key}
	for i := 0; i < 5; i++ {
		clock.Advance(45 * time.Second) // under the 60s TTL each time
		if expired := h.Heartbeat("A", []LeaseRef{ref}); len(expired) != 0 {
			t.Fatalf("heartbeat %d revoked a live lease: %v", i, expired)
		}
		if l := h.Lease("B"); l != nil {
			t.Fatalf("renewed lease lost its job to worker B: %+v", l)
		}
	}
	if st := h.Ack(lease.Campaign, sweep.Result{Key: lease.Key, Theta: 2}); st != AckAccepted {
		t.Fatalf("ack status %q", st)
	}
	rep, err := waitReport(t, ch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requeues != 0 || rep.Executed != 1 {
		t.Fatalf("report requeues=%d executed=%d, want 0/1", rep.Requeues, rep.Executed)
	}
}

// TestDuplicateAckIdempotent: repeated deliveries of the same result are
// dropped, and the journal records the completion exactly once.
func TestDuplicateAckIdempotent(t *testing.T) {
	clock := newFakeClock()
	h := testHub(clock, 3)
	journal, err := sweep.OpenJournal(filepath.Join(t.TempDir(), "j.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	ch := startCampaign(t, h, singleJobSpec(t), sweep.RunOpts{Journal: journal})

	h.Register("A")
	lease := h.Lease("A")
	if lease == nil {
		t.Fatal("no lease")
	}
	res := sweep.Result{Key: lease.Key, Theta: 3}
	if st := h.Ack(lease.Campaign, res); st != AckAccepted {
		t.Fatalf("first ack %q, want %q", st, AckAccepted)
	}
	for i := 0; i < 3; i++ {
		if st := h.Ack(lease.Campaign, res); st != AckDuplicate {
			t.Fatalf("repeat ack %d returned %q, want %q", i, st, AckDuplicate)
		}
	}
	if journal.Len() != 1 {
		t.Fatalf("journal has %d entries after duplicate acks, want 1", journal.Len())
	}
	rep, err := waitReport(t, ch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 1 || rep.Total != 1 {
		t.Fatalf("report executed=%d total=%d, want 1/1", rep.Executed, rep.Total)
	}
}

// TestPoisonJobQuarantine: a job whose leases keep dying is retired after
// the failure cap with its history in the report — and stays out of the
// journal so a resumed campaign retries it.
func TestPoisonJobQuarantine(t *testing.T) {
	clock := newFakeClock()
	h := testHub(clock, 2)
	journal, err := sweep.OpenJournal(filepath.Join(t.TempDir(), "j.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	ch := startCampaign(t, h, singleJobSpec(t), sweep.RunOpts{Journal: journal})

	h.Register("A")
	for attempt := 1; attempt <= 2; attempt++ {
		lease := h.Lease("A")
		if lease == nil {
			t.Fatalf("attempt %d: no lease", attempt)
		}
		if lease.Attempt != attempt {
			t.Fatalf("lease attempt = %d, want %d", lease.Attempt, attempt)
		}
		clock.Advance(61 * time.Second) // die without heartbeat
		h.Tick()
		clock.Advance(41 * time.Second) // past max backoff
	}
	rep, err := waitReport(t, ch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 || rep.Errors != 1 || rep.Requeues != 1 {
		t.Fatalf("report quarantined=%d errors=%d requeues=%d, want 1/1/1",
			rep.Quarantined, rep.Errors, rep.Requeues)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("report has %d results, want 1", len(rep.Results))
	}
	if msg := rep.Results[0].Error; !strings.Contains(msg, "quarantined after 2 failed leases") {
		t.Fatalf("quarantine error not recorded in the report: %q", msg)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Failed != 1 {
		t.Fatalf("aggregated row did not count the quarantined replica as failed: %+v", rep.Rows)
	}
	if journal.Len() != 0 {
		t.Fatal("quarantined job leaked into the journal; a resume would never retry it")
	}
}

// TestPrefixAffinityPartitionsGroups: jobs sharing a warm-start prefix
// lease to the worker that owns the group.
func TestPrefixAffinityPartitionsGroups(t *testing.T) {
	clock := newFakeClock()
	h := testHub(clock, 3)
	ch := startCampaign(t, h, warmGroupSpec(t, "1, 2"), sweep.RunOpts{})

	h.Register("A")
	h.Register("B")
	got := map[string][]int64{} // worker -> seeds of leased jobs
	var leases []*Lease
	for i := 0; i < 2; i++ {
		for _, w := range []string{"A", "B"} {
			l := h.Lease(w)
			if l == nil {
				t.Fatalf("worker %s starved on round %d", w, i)
			}
			if l.PrefixKey == "" || l.PrefixSec != 120 || len(l.Prefix) == 0 {
				t.Fatalf("eligible fork-group lease lacks prefix payload: %+v", l)
			}
			got[w] = append(got[w], l.Seed)
			leases = append(leases, l)
		}
	}
	for w, seeds := range got {
		if seeds[0] != seeds[1] {
			t.Fatalf("worker %s crossed fork groups: leased seeds %v (want both jobs of one group)", w, seeds)
		}
	}
	if got["A"][0] == got["B"][0] {
		t.Fatalf("both workers leased the same fork group: %v", got)
	}
	for _, l := range leases {
		h.Ack(l.Campaign, sweep.Result{Key: l.Key, Theta: 1, Forked: true})
	}
	rep, err := waitReport(t, ch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ForkHits != 4 {
		t.Fatalf("forkHits = %d, want 4", rep.ForkHits)
	}
}

// TestPrefixAffinityFallsBackWhenOwnerDies: a fork group pinned to a live
// worker waits; once the owner is presumed dead its jobs move.
func TestPrefixAffinityFallsBackWhenOwnerDies(t *testing.T) {
	clock := newFakeClock()
	h := testHub(clock, 5)
	ch := startCampaign(t, h, warmGroupSpec(t, "1"), sweep.RunOpts{})

	h.Register("A")
	h.Register("B")
	first := h.Lease("A")
	if first == nil {
		t.Fatal("worker A got no lease")
	}
	// The group is pinned to live worker A: B must wait, not steal.
	if l := h.Lease("B"); l != nil {
		t.Fatalf("worker B stole a fork-group job pinned to live owner A: %+v", l)
	}
	// A dies silently. After one TTL it is presumed dead and the group
	// moves to B — first the still-queued job, then (after backoff) the
	// expired one.
	clock.Advance(61 * time.Second)
	second := h.Lease("B")
	if second == nil {
		t.Fatal("worker B did not inherit the dead owner's fork group")
	}
	clock.Advance(40 * time.Second)
	third := h.Lease("B")
	if third == nil {
		t.Fatal("worker B did not pick up the expired job after backoff")
	}
	if third.Key != first.Key || third.Attempt != 2 {
		t.Fatalf("expected the expired job re-leased to B (attempt 2), got %+v", third)
	}
	h.Ack(second.Campaign, sweep.Result{Key: second.Key, Theta: 1})
	h.Ack(third.Campaign, sweep.Result{Key: third.Key, Theta: 1})
	rep, err := waitReport(t, ch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 2 || rep.Requeues != 1 {
		t.Fatalf("report executed=%d requeues=%d, want 2/1", rep.Executed, rep.Requeues)
	}
}
