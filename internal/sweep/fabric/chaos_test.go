package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynamicdf/internal/sweep"
)

// chaosSpec crosses a non-warm rate axis with a warm faults axis over three
// seeds: 12 jobs in 6 warm-start fork groups of 2, so the chaos run
// exercises prefix affinity, requeues, and replica aggregation at once.
func chaosSpec(t *testing.T) (*sweep.Spec, []byte) {
	t.Helper()
	doc := []byte(fmt.Sprintf(`{
	  "name": "chaos",
	  "base": %s,
	  "axes": [
	    {"name": "rate", "values": [
	      {"label": "r5", "patch": {}},
	      {"label": "r8", "patch": {"rate": {"mean": 8}}}
	    ]},
	    {"name": "faults", "warm": true, "values": [
	      {"label": "off", "patch": {"control": {"faultFreeSec": 120}}},
	      {"label": "on",  "patch": {"control": {"acquireFailProb": 0.5, "faultFreeSec": 120}}}
	    ]}
	  ],
	  "warmStart": {"prefixSec": 120},
	  "seeds": [1, 2, 3]
	}`, testBase))
	spec, err := sweep.ParseSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	return spec, doc
}

// TestFabricChaos is the fabric's end-to-end acceptance test: a campaign
// submitted to a coordinator-backed sweep service and executed by three
// crash-prone workers over real HTTP — with seeded crashes, hangs, lost
// heartbeats, dropped and duplicated result deliveries — must produce an
// aggregate CSV byte-identical to a fault-free single-pool run, journal
// every completion exactly once, and surface requeue counts in the report.
func TestFabricChaos(t *testing.T) {
	spec, doc := chaosSpec(t)

	// Fault-free single-pool baseline.
	baseRep, err := (&sweep.Engine{Workers: 4}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var baseCSV bytes.Buffer
	if err := baseRep.WriteCSV(&baseCSV); err != nil {
		t.Fatal(err)
	}
	if baseRep.Errors != 0 || baseRep.Total != 12 {
		t.Fatalf("baseline errors=%d total=%d, want 0/12", baseRep.Errors, baseRep.Total)
	}

	// Coordinator: lease TTL short enough that crashed workers' jobs requeue
	// within the test, failure cap high enough that quarantine can never
	// retire a job — every job must eventually complete, or the CSV
	// comparison fails.
	hub := NewHub(Config{
		LeaseTTL:         500 * time.Millisecond,
		MaxLeaseFailures: 1000,
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       40 * time.Millisecond,
		TickEvery:        20 * time.Millisecond,
	})
	journalDir := t.TempDir()
	srv := sweep.NewServer(sweep.ServerConfig{Runner: hub, JournalDir: journalDir})
	mux := http.NewServeMux()
	mux.Handle("/fabric/", hub.Handler())
	mux.Handle("/", srv.Handler())
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// Three workers with deterministic seeded faults, respawned (under fresh
	// ids) whenever a crash fault kills them.
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	faults := &Faults{
		Seed:              42,
		CrashProb:         0.25,
		HangProb:          0.15,
		HangFor:           1200 * time.Millisecond,
		SlowProb:          0.2,
		SlowFor:           80 * time.Millisecond,
		DropResultProb:    0.25,
		DupResultProb:     0.3,
		HeartbeatLossProb: 0.2,
	}
	var crashes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for gen := 0; ctx.Err() == nil; gen++ {
				w := NewWorker(WorkerConfig{
					ID:           fmt.Sprintf("chaos-w%d.%d", i, gen),
					Client:       NewClient(ts.URL),
					Slots:        2,
					PollInterval: 10 * time.Millisecond,
					Faults:       faults,
					Logf:         t.Logf,
				})
				if err := w.Run(ctx); errors.Is(err, ErrCrashed) {
					crashes.Add(1)
					continue
				}
				return
			}
		}(i)
	}
	defer wg.Wait()
	defer cancel()

	id := submitSpec(t, ts.URL, doc)
	st := awaitState(t, ts.URL, id, 80*time.Second)
	if st.State != "done" {
		t.Fatalf("campaign ended %q (error %q), want done", st.State, st.Error)
	}

	// The final report must surface the chaos — and none of it may leak into
	// the results.
	rep := fetchReport(t, ts.URL, id)
	if rep.Executed != 12 || rep.Errors != 0 || rep.Quarantined != 0 {
		t.Fatalf("report executed=%d errors=%d quarantined=%d, want 12/0/0", rep.Executed, rep.Errors, rep.Quarantined)
	}
	if rep.Requeues < 1 {
		t.Fatalf("report requeues=%d; the fault plan should have expired at least one lease", rep.Requeues)
	}
	if rep.ForkHits < 1 {
		t.Fatalf("report forkHits=%d; warm-start fork groups should have forked", rep.ForkHits)
	}
	if st.Progress.Requeues != rep.Requeues {
		t.Fatalf("progress requeues=%d, report requeues=%d: counts not surfaced", st.Progress.Requeues, rep.Requeues)
	}
	if crashes.Load() < 1 {
		t.Fatalf("no worker crash faults fired; the chaos plan is inert")
	}

	// Tentpole assertion: byte-identical aggregate CSV despite the chaos.
	chaosCSV := fetchCSV(t, ts.URL, id)
	if !bytes.Equal(chaosCSV, baseCSV.Bytes()) {
		t.Fatalf("chaos CSV diverged from single-pool baseline:\n--- baseline ---\n%s\n--- chaos ---\n%s",
			baseCSV.Bytes(), chaosCSV)
	}

	// Exactly-once through the journal: every completion recorded once,
	// duplicates dropped, and a resumed campaign replays wholly from cache
	// with the same bytes.
	journal, err := sweep.OpenJournal(filepath.Join(journalDir, "sweep-"+id+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	n := journal.Len()
	journal.Close()
	if n != 12 {
		t.Fatalf("journal has %d entries, want 12 (exactly one per job)", n)
	}
	srv2 := sweep.NewServer(sweep.ServerConfig{Runner: hub, JournalDir: journalDir})
	mux2 := http.NewServeMux()
	mux2.Handle("/fabric/", hub.Handler())
	mux2.Handle("/", srv2.Handler())
	ts2 := httptest.NewServer(mux2)
	defer ts2.Close()
	id2 := submitSpec(t, ts2.URL, doc)
	if id2 != id {
		t.Fatalf("resubmitted spec got campaign id %s, want %s", id2, id)
	}
	st2 := awaitState(t, ts2.URL, id2, 20*time.Second)
	if st2.State != "done" {
		t.Fatalf("replayed campaign ended %q (error %q)", st2.State, st2.Error)
	}
	rep2 := fetchReport(t, ts2.URL, id2)
	if rep2.CacheHits != 12 || rep2.Executed != 0 {
		t.Fatalf("replay cacheHits=%d executed=%d, want 12/0", rep2.CacheHits, rep2.Executed)
	}
	replayCSV := fetchCSV(t, ts2.URL, id2)
	if !bytes.Equal(replayCSV, baseCSV.Bytes()) {
		t.Fatal("journal-replayed CSV diverged from baseline")
	}
}

type wireStatus struct {
	ID       string         `json:"id"`
	State    string         `json:"state"`
	Error    string         `json:"error"`
	Progress sweep.Progress `json:"progress"`
}

func submitSpec(t *testing.T, base string, doc []byte) string {
	t.Helper()
	resp, err := http.Post(base+"/sweeps", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

func awaitState(t *testing.T, base, id string, timeout time.Duration) wireStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st wireStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign still running after %s: %+v", timeout, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func fetchReport(t *testing.T, base, id string) *sweep.Report {
	t.Helper()
	resp, err := http.Get(base + "/sweeps/" + id + "/results?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("report: status %d: %s", resp.StatusCode, body)
	}
	var rep sweep.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return &rep
}

func fetchCSV(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv: status %d: %s", resp.StatusCode, body)
	}
	return body
}
