package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dynamicdf/internal/sweep"
)

// Wire protocol, mounted under /fabric/ on the coordinator's mux:
//
//	POST /fabric/register   {"worker": ID}                  -> RegisterInfo
//	POST /fabric/lease      {"worker": ID}                  -> Lease | 204
//	POST /fabric/heartbeat  {"worker": ID, "leases": [...]} -> {"expired": [...]}
//	POST /fabric/results    NDJSON of resultEnvelope lines  -> NDJSON of ackLine
//
// Results travel the NDJSON channel the rest of the system uses: one JSON
// line per result, acked line-by-line so a worker can stream many
// completions over a single request and re-send any line whose ack it
// never saw — the coordinator's ack path is idempotent by job key.

type workerRequest struct {
	Worker string `json:"worker"`
}

type heartbeatRequest struct {
	Worker string     `json:"worker"`
	Leases []LeaseRef `json:"leases"`
}

type heartbeatResponse struct {
	Expired []LeaseRef `json:"expired,omitempty"`
}

// resultEnvelope is one NDJSON result line: the campaign the result
// belongs to plus the result itself. Worker and Span echo the lease's
// trace context so the coordinator's result-ack event closes the span
// that worker's job-run events opened; older workers omit them and the
// coordinator falls back to the slot's own attribution.
type resultEnvelope struct {
	Campaign string       `json:"campaign"`
	Worker   string       `json:"worker,omitempty"`
	Span     string       `json:"span,omitempty"`
	Result   sweep.Result `json:"result"`
}

// ackLine is the coordinator's per-result reply.
type ackLine struct {
	Key    string `json:"key"`
	Status string `json:"status"`
}

// Handler returns the coordinator's HTTP routes. Mount it at /fabric/ on
// the serving mux.
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fabric/register", func(w http.ResponseWriter, r *http.Request) {
		var req workerRequest
		if !decodeBody(w, r, &req) {
			return
		}
		writeFabricJSON(w, http.StatusOK, h.Register(req.Worker))
	})
	mux.HandleFunc("POST /fabric/lease", func(w http.ResponseWriter, r *http.Request) {
		var req workerRequest
		if !decodeBody(w, r, &req) {
			return
		}
		lease := h.Lease(req.Worker)
		if lease == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeFabricJSON(w, http.StatusOK, lease)
	})
	mux.HandleFunc("POST /fabric/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if !decodeBody(w, r, &req) {
			return
		}
		writeFabricJSON(w, http.StatusOK, heartbeatResponse{Expired: h.Heartbeat(req.Worker, req.Leases)})
	})
	mux.HandleFunc("POST /fabric/results", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var env resultEnvelope
			ack := ackLine{Status: AckUnknown}
			if err := json.Unmarshal(line, &env); err == nil && env.Result.Key != "" {
				ack.Key = env.Result.Key
				ack.Status = h.AckSpanned(env.Campaign, env.Worker, env.Span, env.Result)
			}
			if err := enc.Encode(ack); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	})
	return mux
}

func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v); err != nil {
		writeFabricJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return false
	}
	return true
}

func writeFabricJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// Client is a worker's view of the coordinator.
type Client struct {
	// Base is the coordinator's root URL, e.g. "http://127.0.0.1:8350".
	Base string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
}

// NewClient returns a client for the coordinator at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) post(ctx context.Context, path string, body interface{}, out interface{}) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return resp.StatusCode, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return resp.StatusCode, fmt.Errorf("fabric: %s: status %d: %s", path, resp.StatusCode, msg)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("fabric: %s: decode: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Register announces the worker and returns the coordinator's lease
// parameters.
func (c *Client) Register(ctx context.Context, worker string) (RegisterInfo, error) {
	var info RegisterInfo
	_, err := c.post(ctx, "/fabric/register", workerRequest{Worker: worker}, &info)
	return info, err
}

// Lease requests the worker's next job. A nil lease with nil error means
// no work is available right now.
func (c *Client) Lease(ctx context.Context, worker string) (*Lease, error) {
	var lease Lease
	code, err := c.post(ctx, "/fabric/lease", workerRequest{Worker: worker}, &lease)
	if err != nil {
		return nil, err
	}
	if code == http.StatusNoContent {
		return nil, nil
	}
	return &lease, nil
}

// Heartbeat renews the held leases and returns the refs the coordinator
// no longer honors.
func (c *Client) Heartbeat(ctx context.Context, worker string, held []LeaseRef) ([]LeaseRef, error) {
	var resp heartbeatResponse
	if _, err := c.post(ctx, "/fabric/heartbeat", heartbeatRequest{Worker: worker, Leases: held}, &resp); err != nil {
		return nil, err
	}
	return resp.Expired, nil
}

// SendResult delivers one result line on the NDJSON results channel and
// returns the coordinator's ack status. Safe to call repeatedly for the
// same result: acks are idempotent by job key.
func (c *Client) SendResult(ctx context.Context, campaign string, res sweep.Result) (string, error) {
	return c.SendResultSpanned(ctx, campaign, "", "", res)
}

// SendResultSpanned is SendResult carrying the worker id and lease span,
// attributing the coordinator's result-ack event to this delivery.
func (c *Client) SendResultSpanned(ctx context.Context, campaign, worker, span string, res sweep.Result) (string, error) {
	line, err := json.Marshal(resultEnvelope{Campaign: campaign, Worker: worker, Span: span, Result: res})
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/fabric/results",
		bytes.NewReader(append(line, '\n')))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return "", fmt.Errorf("fabric: results: status %d: %s", resp.StatusCode, msg)
	}
	var ack ackLine
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return "", fmt.Errorf("fabric: results: decode ack: %w", err)
	}
	return ack.Status, nil
}

// sleepCtx sleeps for d or until ctx is done, reporting whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
