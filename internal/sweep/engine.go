package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"dynamicdf/internal/obs"
	"dynamicdf/internal/scenario"
	"dynamicdf/internal/sim"
	"dynamicdf/internal/state"
)

// ErrDrained is returned by Engine.Run when a drain request stopped the
// campaign before every job completed. Completed jobs are journaled; the
// rest re-run on resume.
var ErrDrained = errors.New("sweep: drained before completion")

// Result is one finished job: the coordinates plus the run's aggregate
// quantities. Error is set (and the metric fields zero) when the job
// failed deterministically — such failures are journaled too, so a resume
// does not rebuild known-bad scenarios.
type Result struct {
	JobID      string  `json:"jobId"`
	Key        string  `json:"key"`
	Group      string  `json:"group"`
	Seed       int64   `json:"seed"`
	Error      string  `json:"error,omitempty"`
	Intervals  int     `json:"intervals,omitempty"`
	Theta      float64 `json:"theta"`
	Omega      float64 `json:"omega"`
	MinOmega   float64 `json:"minOmega"`
	Gamma      float64 `json:"gamma"`
	CostUSD    float64 `json:"costUsd"`
	UsedCores  float64 `json:"usedCores"`
	MeanVMs    float64 `json:"meanVms"`
	LatencySec float64 `json:"latencySec"`
	MeetsOmega bool    `json:"meetsOmega"`
	// Violations counts invariant violations the scenario's checker
	// recorded (0 when the scenario has no check block). A strict checker
	// also sets Error, since the run aborts at the first violation.
	Violations int `json:"violations,omitempty"`
	// Forked marks a job that resumed from a shared warm-start prefix
	// checkpoint instead of simulating from zero.
	Forked bool `json:"forked,omitempty"`
	// Tenants carries the per-tenant slice of a multi-tenant job, in the
	// scenario's declaration order; nil for single-tenant scenarios, so
	// existing journal entries decode (and re-encode) unchanged.
	Tenants []TenantResult `json:"tenants,omitempty"`

	// Cached marks a result served from the journal instead of executed
	// this run. Never persisted.
	Cached bool `json:"-"`
}

// TenantResult is one tenant's slice of a multi-tenant job's outcome. Theta
// and MeetsOmega are judged against the tenant's own calibrated objective,
// with the tenant's attributed spend standing in for the whole bill.
type TenantResult struct {
	Name       string  `json:"name"`
	Theta      float64 `json:"theta"`
	Omega      float64 `json:"omega"`
	MinOmega   float64 `json:"minOmega"`
	Gamma      float64 `json:"gamma"`
	SpendUSD   float64 `json:"spendUsd"`
	MeetsOmega bool    `json:"meetsOmega"`
}

// Progress is a point-in-time view of a running campaign.
type Progress struct {
	Total     int `json:"total"`
	Done      int `json:"done"` // cache hits + executed (+ quarantined on the fabric)
	Running   int `json:"running"`
	CacheHits int `json:"cacheHits"`
	Executed  int `json:"executed"`
	Errors    int `json:"errors"`
	ForkHits  int `json:"forkHits,omitempty"`
	// Requeues, Quarantined, and Workers are populated by the distributed
	// fabric (internal/sweep/fabric); the in-process pool leaves them zero.
	Requeues    int    `json:"requeues,omitempty"`
	Quarantined int    `json:"quarantined,omitempty"`
	Workers     int    `json:"workers,omitempty"`
	LastJob     string `json:"lastJob,omitempty"`
}

// Report is a campaign's outcome: per-job results in deterministic grid
// order plus the aggregated per-group rows.
type Report struct {
	Name      string `json:"name"`
	Total     int    `json:"total"`
	CacheHits int    `json:"cacheHits"`
	Executed  int    `json:"executed"`
	Errors    int    `json:"errors"`
	ForkHits  int    `json:"forkHits,omitempty"` // jobs forked from warm-start prefixes
	Missing   int    `json:"missing"`            // jobs unfinished after cancel/drain
	// Requeues counts leases that expired and sent their job back to the
	// queue; Quarantined counts jobs retired as poison after repeated lease
	// failures. Both stay zero on the in-process pool.
	Requeues    int      `json:"requeues,omitempty"`
	Quarantined int      `json:"quarantined,omitempty"`
	Rows        []AggRow `json:"rows"`
	Results     []Result `json:"results"`
}

// HitRate reports the fraction of jobs served from the journal.
func (r *Report) HitRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.Total)
}

// Engine executes sweep campaigns on a bounded worker pool.
type Engine struct {
	// Workers bounds concurrent jobs (default GOMAXPROCS, min 1).
	Workers int
	// Journal, when set, caches completions and enables resume.
	Journal *Journal
	// OnProgress, when set, observes each job completion. It is invoked
	// serially and must not call back into the engine.
	OnProgress func(Progress)
	// Drain, when non-nil, requests a graceful stop once closed: in-flight
	// jobs finish and are journaled, queued jobs are abandoned, and Run
	// returns ErrDrained.
	Drain <-chan struct{}
	// Tracer, when non-nil, receives a sweep-job span per executed job plus
	// every traced event the per-job sim engines emit. Concurrent workers
	// interleave their events arbitrarily.
	Tracer *obs.Tracer
	// Pool, when non-nil, is updated as jobs move through the worker pool.
	Pool *obs.PoolMetrics
	// Gauges, when non-nil, is attached to every per-job sim engine so the
	// exposition handler shows live run state (last writer wins across
	// concurrent workers); Theta is set as each job completes.
	Gauges *obs.RunGauges
}

// Run expands the spec and executes every job not already journaled.
// Cancelling ctx aborts in-flight simulations mid-horizon (via
// sim.RunContext); those jobs are not journaled and re-run on resume. The
// returned report is valid — with Missing > 0 — even when the error is
// non-nil.
func (e *Engine) Run(ctx context.Context, spec *Spec) (*Report, error) {
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	report := &Report{Name: spec.Name, Total: len(jobs)}
	results := make([]*Result, len(jobs))

	// Serve journaled completions without touching the pool.
	var pending []int
	for i := range jobs {
		if e.Journal != nil {
			if r, ok := e.Journal.Lookup(jobs[i].Key); ok {
				r.JobID = jobs[i].ID
				r.Group = jobs[i].Group
				r.Seed = jobs[i].Seed
				r.Cached = true
				results[i] = &r
				report.CacheHits++
				if e.Pool != nil {
					e.Pool.CacheHits.Inc()
				}
				continue
			}
		}
		pending = append(pending, i)
	}
	if e.Pool != nil {
		e.Pool.JobsQueued.Set(float64(len(pending)))
	}

	// Warm-start: pending jobs that share a prefix key fork one checkpointed
	// prefix run instead of each simulating its first PrefixSec from zero.
	// Only groups with at least two pending members benefit; singletons run
	// cold. The prefix simulates lazily — the first worker to reach a group
	// runs it, the rest of the group reuses the snapshot.
	prefixes := map[string]*prefixRun{}
	if spec.WarmStart != nil {
		count := map[string]int{}
		for _, i := range pending {
			if jobs[i].Prefix != nil {
				count[jobs[i].PrefixKey]++
			}
		}
		for key, n := range count {
			if n >= 2 {
				prefixes[key] = &prefixRun{untilSec: spec.WarmStart.PrefixSec}
			}
		}
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) && len(pending) > 0 {
		workers = len(pending)
	}

	var (
		mu         sync.Mutex
		journalErr error
	)
	running := 0
	emit := func(last string) {
		if e.OnProgress == nil {
			return
		}
		e.OnProgress(Progress{
			Total:     report.Total,
			Done:      report.CacheHits + report.Executed,
			Running:   running,
			CacheHits: report.CacheHits,
			Executed:  report.Executed,
			Errors:    report.Errors,
			ForkHits:  report.ForkHits,
			LastJob:   last,
		})
	}
	mu.Lock()
	emit("")
	mu.Unlock()

	ch := make(chan int)
	go func() {
		defer close(ch)
		for _, i := range pending {
			select {
			case <-ctx.Done():
				return
			case <-e.Drain:
				return
			case ch <- i:
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				mu.Lock()
				running++
				mu.Unlock()
				if e.Pool != nil {
					e.Pool.JobsQueued.Add(-1)
					e.Pool.JobsRunning.Add(1)
				}
				e.Tracer.Emit(obs.Event{Type: obs.EventSweepJob,
					Phase: obs.PhaseStart, N: i, Detail: jobs[i].ID})
				r, canceled := e.runJob(ctx, i, jobs[i], prefixes[jobs[i].PrefixKey])
				if e.Pool != nil {
					e.Pool.JobsRunning.Add(-1)
					if !canceled {
						e.Pool.JobsDone.Inc()
						if r.Error != "" {
							e.Pool.JobsErrors.Inc()
						}
					}
				}
				mu.Lock()
				running--
				mu.Unlock()
				if canceled {
					continue
				}
				if e.Journal != nil {
					if err := e.Journal.Append(r); err != nil {
						mu.Lock()
						if journalErr == nil {
							journalErr = err
						}
						mu.Unlock()
						return
					}
				}
				mu.Lock()
				results[i] = &r
				report.Executed++
				if r.Error != "" {
					report.Errors++
				}
				if r.Forked {
					report.ForkHits++
				}
				emit(r.JobID)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	for i := range results {
		if results[i] == nil {
			report.Missing++
			continue
		}
		report.Results = append(report.Results, *results[i])
	}
	report.Rows = Aggregate(jobs, results)

	switch {
	case journalErr != nil:
		return report, journalErr
	case ctx.Err() != nil:
		return report, fmt.Errorf("sweep: %d/%d jobs incomplete: %w", report.Missing, report.Total, ctx.Err())
	case report.Missing > 0:
		return report, fmt.Errorf("%w (%d/%d jobs incomplete)", ErrDrained, report.Missing, report.Total)
	}
	return report, nil
}

// RunOpts carries a campaign's execution context for a CampaignRunner: the
// per-campaign journal, progress sink, and drain signal the hosting server
// owns.
type RunOpts struct {
	Journal    *Journal
	OnProgress func(Progress)
	Drain      <-chan struct{}
}

// CampaignRunner executes an expanded spec to completion. The in-process
// Engine is the built-in implementation; internal/sweep/fabric provides a
// distributed one (lease-based coordinator + HTTP workers). The Server
// picks whichever its config names.
type CampaignRunner interface {
	RunCampaign(ctx context.Context, spec *Spec, opts RunOpts) (*Report, error)
}

// RunCampaign implements CampaignRunner on the in-process pool. The
// receiver acts as a template (Workers, Pool, Gauges, Tracer); the
// per-campaign journal, progress sink, and drain channel come from opts.
func (e *Engine) RunCampaign(ctx context.Context, spec *Spec, opts RunOpts) (*Report, error) {
	eng := *e
	eng.Journal = opts.Journal
	eng.OnProgress = opts.OnProgress
	eng.Drain = opts.Drain
	return eng.Run(ctx, spec)
}

// prefixRun is one shared warm-start prefix: the first worker to need it
// simulates the prefix scenario to untilSec and checkpoints; everyone else
// waits on the Once and forks the snapshot. A nil snap after the Once means
// the prefix failed (build error, cancellation, ...) and the group's jobs
// fall back to cold runs — warm-starting is an optimization, never a new
// failure mode.
type prefixRun struct {
	once     sync.Once
	untilSec int64
	snap     *state.Snapshot
}

// RunPrefix simulates a warm-start prefix scenario to untilSec and returns
// its checkpoint, or nil on any failure (build error, cancellation, panic):
// warm-starting is an optimization, never a new failure mode. No tracer or
// gauges are attached — the prefix's events would otherwise appear once for
// the whole group instead of once per job, breaking per-job trace
// accounting. Both the in-process pool and fabric workers share this path,
// so warm and cold runs stay byte-equivalent across topologies.
func RunPrefix(ctx context.Context, sc *scenario.Scenario, untilSec int64) (snap *state.Snapshot) {
	defer func() { recover() }() // a panicking prefix falls back to cold runs
	built, err := sc.Build()
	if err != nil {
		return nil
	}
	if err := built.Engine.RunUntil(ctx, built.Scheduler, untilSec); err != nil {
		return nil
	}
	s, err := built.Engine.Checkpoint()
	if err != nil {
		return nil
	}
	return s
}

// runJob resolves the group's shared prefix checkpoint (simulating it once
// per group) and hands the job to ExecuteJob.
func (e *Engine) runJob(ctx context.Context, idx int, job Job, pr *prefixRun) (Result, bool) {
	var snap *state.Snapshot
	if pr != nil {
		pr.once.Do(func() { pr.snap = RunPrefix(ctx, job.Prefix, pr.untilSec) })
		snap = pr.snap
	}
	return ExecuteJob(ctx, job, snap, e.Tracer, e.Gauges, idx)
}

// ExecuteJob builds and runs one resolved job in isolation: a fresh engine
// and scheduler per job, panics converted to deterministic job errors, and
// cancellation distinguished from failure. The tracer and gauges are
// attached to the job's sim engine; the closing sweep-job span carries the
// job's outcome (Value = Theta, or the error in Detail) with n tagging the
// span. A non-nil snap forks the job from a warm-start prefix checkpoint
// when restorable; any warm-start failure silently degrades to a cold run.
// Fabric workers share this path with the in-process pool, so a job's
// result is identical regardless of where it executes.
func ExecuteJob(ctx context.Context, job Job, snap *state.Snapshot, tracer *obs.Tracer, gauges *obs.RunGauges, n int) (res Result, canceled bool) {
	res = Result{JobID: job.ID, Key: job.Key, Group: job.Group, Seed: job.Seed}
	defer func() {
		if p := recover(); p != nil {
			res.Error = fmt.Sprintf("panic: %v", p)
		}
		ev := obs.Event{Type: obs.EventSweepJob, Phase: obs.PhaseEnd,
			N: n, Detail: job.ID, Value: res.Theta}
		switch {
		case canceled:
			ev.Detail = job.ID + " canceled"
		case res.Error != "":
			ev.Detail = job.ID + " error: " + res.Error
		}
		tracer.Emit(ev)
	}()
	built, err := job.Scenario.Build()
	if err != nil {
		res.Error = err.Error()
		return res, false
	}
	if snap != nil {
		if eng, rerr := sim.Restore(snap, built.Config); rerr == nil {
			built.Engine = eng
			res.Forked = true
		}
	}
	built.Engine.SetTracer(tracer)
	built.Engine.SetGauges(gauges)
	sum, err := built.Engine.RunContext(ctx, built.Scheduler)
	res.Violations = built.Engine.InvariantViolations()
	if err != nil {
		if errors.Is(err, sim.ErrCanceled) {
			return res, true
		}
		res.Error = err.Error()
		return res, false
	}
	res.Intervals = sum.Intervals
	res.Theta = built.Objective.Theta(sum.MeanGamma, sum.TotalCostUSD)
	res.Omega = sum.MeanOmega
	res.MinOmega = sum.MinOmega
	res.Gamma = sum.MeanGamma
	res.CostUSD = sum.TotalCostUSD
	res.UsedCores = sum.MeanUsedCores
	res.MeanVMs = sum.MeanVMs
	res.LatencySec = sum.MeanLatencySec
	res.MeetsOmega = built.Objective.MeetsConstraint(sum.MeanOmega)
	for i, ts := range sum.Tenants {
		obj := built.Objective
		if i < len(built.TenantObjectives) {
			obj = built.TenantObjectives[i]
		}
		res.Tenants = append(res.Tenants, TenantResult{
			Name:       ts.Name,
			Theta:      obj.Theta(ts.MeanGamma, ts.SpendUSD),
			Omega:      ts.MeanOmega,
			MinOmega:   ts.MinOmega,
			Gamma:      ts.MeanGamma,
			SpendUSD:   ts.SpendUSD,
			MeetsOmega: obj.MeetsConstraint(ts.MeanOmega),
		})
	}
	if gauges != nil {
		gauges.Theta.Set(res.Theta)
	}
	return res, false
}
