package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dynamicdf/internal/metrics"
)

// AggRow aggregates one grid point's replicas (its seeds) into the
// distributions the evaluation reports: Theta (the objective), Omega
// (relative throughput), utilization (mean assigned cores), and dollar
// cost.
type AggRow struct {
	// Group is the grid coordinate sans seed, e.g. "policy=global/rate=20".
	Group string `json:"group"`
	// Seeds counts the replicas aggregated; Failed counts replicas whose
	// jobs errored (excluded from the distributions); Missing counts
	// replicas with no result yet (cancelled/drained campaigns).
	Seeds   int `json:"seeds"`
	Failed  int `json:"failed,omitempty"`
	Missing int `json:"missing,omitempty"`
	// Violations sums invariant violations across the group's replicas
	// (0 unless the scenarios enabled the check block).
	Violations int `json:"violations,omitempty"`

	Theta       metrics.Distribution `json:"theta"`
	Omega       metrics.Distribution `json:"omega"`
	Utilization metrics.Distribution `json:"utilization"`
	CostUSD     metrics.Distribution `json:"costUsd"`

	// Tenants holds per-tenant distributions for multi-tenant grid points,
	// in the scenario's tenant declaration order; nil otherwise, keeping
	// single-tenant reports (and the aggregate CSV schema) unchanged.
	Tenants []TenantAggRow `json:"tenants,omitempty"`
}

// TenantAggRow aggregates one tenant's slice of a grid point's replicas.
type TenantAggRow struct {
	Name     string               `json:"name"`
	Theta    metrics.Distribution `json:"theta"`
	Omega    metrics.Distribution `json:"omega"`
	SpendUSD metrics.Distribution `json:"spendUsd"`
}

// Aggregate reduces per-job results into per-group rows, in the jobs'
// first-occurrence group order (deterministic for a given spec). Errored
// and missing replicas are counted but excluded from the distributions.
func Aggregate(jobs []Job, results []*Result) []AggRow {
	type tenAcc struct {
		theta, omega, spend []float64
	}
	type acc struct {
		theta, omega, util, cost []float64
		failed, missing, viol    int
		tenNames                 []string
		tens                     map[string]*tenAcc
	}
	accs := map[string]*acc{}
	order := GroupsInOrder(jobs)
	for _, g := range order {
		accs[g] = &acc{}
	}
	for i, j := range jobs {
		a := accs[j.Group]
		var r *Result
		if i < len(results) {
			r = results[i]
		}
		if r != nil {
			a.viol += r.Violations
		}
		switch {
		case r == nil:
			a.missing++
		case r.Error != "":
			a.failed++
		default:
			a.theta = append(a.theta, r.Theta)
			a.omega = append(a.omega, r.Omega)
			a.util = append(a.util, r.UsedCores)
			a.cost = append(a.cost, r.CostUSD)
			for _, tr := range r.Tenants {
				if a.tens == nil {
					a.tens = map[string]*tenAcc{}
				}
				ta := a.tens[tr.Name]
				if ta == nil {
					ta = &tenAcc{}
					a.tens[tr.Name] = ta
					a.tenNames = append(a.tenNames, tr.Name)
				}
				ta.theta = append(ta.theta, tr.Theta)
				ta.omega = append(ta.omega, tr.Omega)
				ta.spend = append(ta.spend, tr.SpendUSD)
			}
		}
	}
	rows := make([]AggRow, 0, len(order))
	for _, g := range order {
		a := accs[g]
		row := AggRow{
			Group:       g,
			Seeds:       len(a.theta) + a.failed + a.missing,
			Failed:      a.failed,
			Missing:     a.missing,
			Violations:  a.viol,
			Theta:       metrics.NewDistribution(a.theta),
			Omega:       metrics.NewDistribution(a.omega),
			Utilization: metrics.NewDistribution(a.util),
			CostUSD:     metrics.NewDistribution(a.cost),
		}
		for _, name := range a.tenNames {
			ta := a.tens[name]
			row.Tenants = append(row.Tenants, TenantAggRow{
				Name:     name,
				Theta:    metrics.NewDistribution(ta.theta),
				Omega:    metrics.NewDistribution(ta.omega),
				SpendUSD: metrics.NewDistribution(ta.spend),
			})
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteCSV streams the aggregated rows in a byte-deterministic encoding:
// fixed column order, shortest round-trip float formatting, rows in grid
// order. Two complete runs of the same spec produce identical bytes.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"group", "seeds", "failed", "missing",
		"theta_mean", "theta_p50", "theta_p95",
		"omega_mean", "omega_p50", "omega_p95",
		"util_mean", "util_p50", "util_p95",
		"cost_mean", "cost_p50", "cost_p95",
		"violations",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, row := range r.Rows {
		rec := []string{
			row.Group,
			strconv.Itoa(row.Seeds), strconv.Itoa(row.Failed), strconv.Itoa(row.Missing),
			f(row.Theta.Mean), f(row.Theta.P50), f(row.Theta.P95),
			f(row.Omega.Mean), f(row.Omega.P50), f(row.Omega.P95),
			f(row.Utilization.Mean), f(row.Utilization.P50), f(row.Utilization.P95),
			f(row.CostUSD.Mean), f(row.CostUSD.P50), f(row.CostUSD.P95),
			strconv.Itoa(row.Violations),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table renders the aggregated rows for terminal output, one line per grid
// point, plus a campaign footer with the cache hit rate.
func (r *Report) Table() string {
	var b strings.Builder
	name := r.Name
	if name == "" {
		name = "(unnamed sweep)"
	}
	fmt.Fprintf(&b, "sweep %s: %d jobs, %d executed, %d cached (%.0f%% hit rate), %d errors",
		name, r.Total, r.Executed, r.CacheHits, 100*r.HitRate(), r.Errors)
	if r.Requeues > 0 || r.Quarantined > 0 {
		fmt.Fprintf(&b, ", %d requeued, %d quarantined", r.Requeues, r.Quarantined)
	}
	b.WriteString("\n")
	if r.Missing > 0 {
		fmt.Fprintf(&b, "  INCOMPLETE: %d jobs missing\n", r.Missing)
	}
	for _, row := range r.Rows {
		group := row.Group
		if group == "" {
			group = "(base)"
		}
		fmt.Fprintf(&b, "%-48s n=%-2d theta=%+.4f [p95 %+.4f] omega=%.3f [p95 %.3f] util=%.1f cost=$%.2f [p95 $%.2f]",
			group, row.Seeds, row.Theta.Mean, row.Theta.P95, row.Omega.Mean, row.Omega.P95,
			row.Utilization.Mean, row.CostUSD.Mean, row.CostUSD.P95)
		if row.Failed > 0 || row.Missing > 0 {
			fmt.Fprintf(&b, " (failed=%d missing=%d)", row.Failed, row.Missing)
		}
		if row.Violations > 0 {
			fmt.Fprintf(&b, " INVARIANT-VIOLATIONS=%d", row.Violations)
		}
		b.WriteString("\n")
		for _, tr := range row.Tenants {
			fmt.Fprintf(&b, "  tenant %-20s theta=%+.4f [p95 %+.4f] omega=%.3f [p95 %.3f] spend=$%.2f [p95 $%.2f]\n",
				tr.Name, tr.Theta.Mean, tr.Theta.P95, tr.Omega.Mean, tr.Omega.P95,
				tr.SpendUSD.Mean, tr.SpendUSD.P95)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
