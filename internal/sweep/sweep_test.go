package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// testBase is a small 2-PE scenario that runs in milliseconds.
const testBase = `{
  "graph": {
    "pes": [
      {"name": "src", "alternates": [{"name": "e", "value": 1, "cost": 0.2, "selectivity": 1}]},
      {"name": "work", "alternates": [
        {"name": "full", "value": 1.0, "cost": 1.0, "selectivity": 1},
        {"name": "lite", "value": 0.8, "cost": 0.5, "selectivity": 1}
      ]}
    ],
    "edges": [["src", "work"]]
  },
  "rate": {"kind": "constant", "mean": 5},
  "horizonHours": 0.1,
  "seed": 1
}`

// testSpec builds the acceptance grid: 3 scenario variants x 4 seeds.
func testSpec(t *testing.T) *Spec {
	t.Helper()
	doc := fmt.Sprintf(`{
	  "name": "accept",
	  "base": %s,
	  "axes": [
	    {"name": "rate", "values": [
	      {"label": "low",  "patch": {"rate": {"mean": 3}}},
	      {"label": "mid",  "patch": {"rate": {"mean": 6}}},
	      {"label": "high", "patch": {"rate": {"mean": 12}}}
	    ]}
	  ],
	  "seeds": [1, 2, 3, 4]
	}`, testBase)
	s, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMergePatch(t *testing.T) {
	cases := []struct{ target, patch, want string }{
		{`{"a":1,"b":2}`, `{"b":3}`, `{"a":1,"b":3}`},
		{`{"a":{"x":1,"y":2}}`, `{"a":{"y":null,"z":3}}`, `{"a":{"x":1,"z":3}}`},
		{`{"a":1}`, `{"a":{"nested":true}}`, `{"a":{"nested":true}}`},
		{`{"a":1}`, `{}`, `{"a":1}`},
		{`{"a":1}`, `{"big":9007199254740993}`, `{"a":1,"big":9007199254740993}`},
	}
	for _, c := range cases {
		got, err := MergePatch([]byte(c.target), []byte(c.patch))
		if err != nil {
			t.Fatalf("patch %s: %v", c.patch, err)
		}
		var gv, wv interface{}
		if err := json.Unmarshal(got, &gv); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal([]byte(c.want), &wv); err != nil {
			t.Fatal(err)
		}
		g, _ := json.Marshal(gv)
		w, _ := json.Marshal(wv)
		if !bytes.Equal(g, w) {
			t.Fatalf("merge(%s, %s) = %s, want %s", c.target, c.patch, g, w)
		}
	}
	if _, err := MergePatch([]byte(`{"a":`), []byte(`{"b":1}`)); err == nil {
		t.Fatal("malformed target accepted")
	}
}

func TestExpandGrid(t *testing.T) {
	spec := testSpec(t)
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 12 {
		t.Fatalf("jobs = %d, want 12", len(jobs))
	}
	if jobs[0].ID != "rate=low/seed=1" || jobs[11].ID != "rate=high/seed=4" {
		t.Fatalf("job order: first %q last %q", jobs[0].ID, jobs[11].ID)
	}
	groups := GroupsInOrder(jobs)
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	// Keys are unique and stable across expansions.
	again, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Key != again[i].Key {
			t.Fatalf("job %s key changed between expansions", jobs[i].ID)
		}
	}
	// Seeds land in the resolved scenario.
	if jobs[1].Scenario.Seed != 2 {
		t.Fatalf("seed = %d", jobs[1].Scenario.Seed)
	}
	// The key is insensitive to cosmetic spec changes but sensitive to
	// semantic ones.
	if jobs[0].Key == jobs[1].Key || jobs[0].Key == jobs[4].Key {
		t.Fatal("distinct jobs share a key")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []string{
		`{"name": "x", "base": {"graph": 5}, "axes": [], "seeds": [1]}`,                                               // base type error
		`{"name": "x", "base": ` + testBase + `, "axes": [{"name": "", "values": [{"label": "a", "patch": {}}]}]}`,    // unnamed axis
		`{"name": "x", "base": ` + testBase + `, "axes": [{"name": "a", "values": []}]}`,                              // empty axis
		`{"name": "x", "base": ` + testBase + `, "axes": [{"name": "a=b", "values": [{"label": "v", "patch": {}}]}]}`, // reserved char
		`{"name": "x", "base": ` + testBase + `, "seeds": [1, 1]}`,                                                    // duplicate seed
		`{"name": "x", "base": ` + testBase + `, "typo": 1}`,                                                          // unknown field
	}
	for i, doc := range bad {
		if _, err := ParseSpec([]byte(doc)); err == nil {
			t.Fatalf("case %d: bad spec accepted", i)
		}
	}
}

func TestSpecIDStable(t *testing.T) {
	a, err := testSpec(t).ID()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testSpec(t).ID()
	if err != nil {
		t.Fatal(err)
	}
	if a != b || len(a) != 12 {
		t.Fatalf("spec IDs %q / %q", a, b)
	}
}

// TestRunDeterministicOutput is the byte-identical half of the acceptance
// criterion: two complete runs of the same spec produce identical
// aggregated CSV bytes.
func TestRunDeterministicOutput(t *testing.T) {
	run := func() []byte {
		eng := &Engine{Workers: 3}
		rep, err := eng.Run(context.Background(), testSpec(t))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Total != 12 || rep.Executed != 12 || rep.Errors != 0 {
			t.Fatalf("report = %+v", rep)
		}
		var buf bytes.Buffer
		if err := rep.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("aggregated output differs between runs:\n%s\n---\n%s", a, b)
	}
	if lines := strings.Split(strings.TrimSpace(string(a)), "\n"); len(lines) != 4 {
		t.Fatalf("csv rows = %d, want header + 3 groups", len(lines))
	}
}

// TestKillAndResume is the crash-resume half of the acceptance criterion:
// cancel a sweep mid-run, then resume against the same journal and verify
// only the missing jobs execute (the journal proves it via the hit count).
func TestKillAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	spec := testSpec(t)

	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	eng := &Engine{
		Workers: 2,
		Journal: j1,
		OnProgress: func(p Progress) {
			if p.Executed >= 5 {
				once.Do(cancel) // kill mid-campaign
			}
		},
	}
	rep, err := eng.Run(ctx, spec)
	if err == nil || rep.Missing == 0 {
		t.Fatalf("cancelled run: err=%v missing=%d", err, rep.Missing)
	}
	completed := j1.Len()
	if completed == 0 || completed == 12 {
		t.Fatalf("journal has %d/12 entries after kill; want a partial campaign", completed)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: a fresh engine over the same journal file.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != completed {
		t.Fatalf("journal replay lost entries: %d != %d", j2.Len(), completed)
	}
	eng2 := &Engine{Workers: 2, Journal: j2}
	rep2, err := eng2.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CacheHits != completed {
		t.Fatalf("resume cache hits = %d, want %d", rep2.CacheHits, completed)
	}
	if rep2.Executed != 12-completed {
		t.Fatalf("resume executed = %d, want %d", rep2.Executed, 12-completed)
	}
	if rep2.Missing != 0 || len(rep2.Results) != 12 {
		t.Fatalf("resume incomplete: %+v", rep2)
	}
	if got := rep2.HitRate(); got != float64(completed)/12 {
		t.Fatalf("hit rate = %v", got)
	}

	// A second resume serves everything from cache and matches a fresh
	// uncached campaign byte-for-byte.
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	rep3, err := (&Engine{Workers: 2, Journal: j3}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.CacheHits != 12 || rep3.Executed != 0 {
		t.Fatalf("full-cache resume: %+v", rep3)
	}
	fresh, err := (&Engine{Workers: 2}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var cachedCSV, freshCSV bytes.Buffer
	if err := rep3.WriteCSV(&cachedCSV); err != nil {
		t.Fatal(err)
	}
	if err := fresh.WriteCSV(&freshCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cachedCSV.Bytes(), freshCSV.Bytes()) {
		t.Fatalf("cached aggregate differs from fresh aggregate:\n%s\n---\n%s",
			cachedCSV.String(), freshCSV.String())
	}
}

// TestJournalTornTail simulates a crash mid-append: a truncated final line
// must not poison the journal.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Result{JobID: "a", Key: "k1", Omega: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn write.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"jobId":"b","key":"k2","om`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Fatalf("entries = %d, want 1 (torn tail dropped)", j2.Len())
	}
	if _, ok := j2.Lookup("k1"); !ok {
		t.Fatal("intact entry lost")
	}
	if _, ok := j2.Lookup("k2"); ok {
		t.Fatal("torn entry replayed")
	}
	// The journal stays appendable after replaying a torn tail.
	if err := j2.Append(Result{JobID: "c", Key: "k3"}); err != nil {
		t.Fatal(err)
	}
}

// TestDrain checks the graceful-stop path: closing Drain abandons queued
// jobs, keeps finished ones, and reports ErrDrained.
func TestDrain(t *testing.T) {
	drain := make(chan struct{})
	var once sync.Once
	eng := &Engine{
		Workers: 1,
		Drain:   drain,
		OnProgress: func(p Progress) {
			if p.Executed >= 3 {
				once.Do(func() { close(drain) })
			}
		},
	}
	rep, err := eng.Run(context.Background(), testSpec(t))
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("err = %v, want ErrDrained", err)
	}
	if rep.Missing == 0 || rep.Executed == 0 || rep.Executed+rep.Missing != 12 {
		t.Fatalf("drained report: %+v", rep)
	}
}

// TestJobErrorIsCachedNotFatal: a deterministically failing job is recorded
// as a per-job error, journaled, and excluded from aggregation.
func TestJobErrorIsCachedNotFatal(t *testing.T) {
	doc := fmt.Sprintf(`{
	  "name": "witherr",
	  "base": %s,
	  "axes": [{"name": "infra", "values": [
	    {"label": "ok",  "patch": {}},
	    {"label": "bad", "patch": {"infra": {"kind": "csvdir", "dir": "/nonexistent-sweep-dir"}}}
	  ]}],
	  "seeds": [1, 2]
	}`, testBase)
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := (&Engine{Workers: 2, Journal: j}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 2 || rep.Executed != 4 {
		t.Fatalf("report = %+v", rep)
	}
	var badRow AggRow
	for _, row := range rep.Rows {
		if row.Group == "infra=bad" {
			badRow = row
		}
	}
	if badRow.Failed != 2 || badRow.Seeds != 2 {
		t.Fatalf("bad row = %+v", badRow)
	}
	j.Close()

	// On resume the failures are cache hits, not re-builds.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rep2, err := (&Engine{Workers: 2, Journal: j2}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CacheHits != 4 || rep2.Executed != 0 || rep2.Errors != 0 {
		t.Fatalf("resume report = %+v", rep2)
	}
}
