package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestJournalTornTailRecovery simulates a crash between an append's write
// and its fsync: the journal's final line is torn mid-record. Reopening
// must drop the partial line, keep every complete entry, and — crucially —
// truncate the tail so the next append starts on a clean line boundary
// instead of gluing onto the torn bytes and corrupting itself.
func TestJournalTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"aaa", "bbb"} {
		if err := j.Append(Result{JobID: "job-" + key, Key: key, Theta: 1.5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-append: a partial record with no terminating newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"jobId":"job-ccc","key":"ccc","the`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopening a torn journal must succeed, got %v", err)
	}
	if got := j2.Len(); got != 2 {
		t.Fatalf("torn journal replayed %d entries, want 2", got)
	}
	for _, key := range []string{"aaa", "bbb"} {
		if _, ok := j2.Lookup(key); !ok {
			t.Fatalf("entry %q lost by torn-tail recovery", key)
		}
	}
	// The torn job re-runs and re-acks; the append must land intact.
	if err := j2.Append(Result{JobID: "job-ccc", Key: "ccc", Theta: 2.5}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := j3.Len(); got != 3 {
		t.Fatalf("recovered journal has %d entries, want 3", got)
	}
	r, ok := j3.Lookup("ccc")
	if !ok || r.Theta != 2.5 {
		t.Fatalf("re-acked entry corrupted: %+v (ok=%v)", r, ok)
	}

	// Every line on disk must be complete, valid JSON: no glued fragments.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte{'\n'})
	if len(lines) != 3 {
		t.Fatalf("journal file has %d lines, want 3:\n%s", len(lines), data)
	}
	for i, line := range lines {
		var r Result
		if err := json.Unmarshal(line, &r); err != nil || r.Key == "" {
			t.Fatalf("line %d is not a valid journal record: %q (%v)", i, line, err)
		}
	}
}

// TestJournalTornTailOnEmptyJournal covers the degenerate torn tail: the
// very first append crashed mid-write, leaving only a partial line.
func TestJournalTornTailOnEmptyJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := os.WriteFile(path, []byte(`{"key":"to`), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("replayed %d entries from a torn-only journal, want 0", j.Len())
	}
	if err := j.Append(Result{JobID: "a", Key: "torn", Theta: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if r, ok := j2.Lookup("torn"); !ok || r.Theta != 1 {
		t.Fatalf("append after torn-tail truncation lost or corrupted: %+v ok=%v", r, ok)
	}
}
