package sweep

import (
	"context"
	"strings"
	"testing"
)

// tenantBase is a small two-tenant scenario for sweep tests.
const tenantBase = `{
  "tenants": [
    {
      "name": "front",
      "graph": {
        "pes": [
          {"name": "src", "alternates": [{"name": "e", "value": 1, "cost": 0.2, "selectivity": 1}]},
          {"name": "work", "alternates": [{"name": "e", "value": 1, "cost": 0.5, "selectivity": 1}]}
        ],
        "edges": [["src", "work"]]
      },
      "rate": {"kind": "constant", "mean": 5},
      "priority": 1
    },
    {
      "name": "batch",
      "graph": {
        "pes": [
          {"name": "src", "alternates": [{"name": "e", "value": 1, "cost": 0.2, "selectivity": 1}]},
          {"name": "work", "alternates": [{"name": "e", "value": 1, "cost": 0.5, "selectivity": 1}]}
        ],
        "edges": [["src", "work"]]
      },
      "rate": {"kind": "constant", "mean": 3}
    }
  ],
  "horizonHours": 0.1,
  "seed": 1
}`

// TestSweepSurfacesTenants: multi-tenant jobs carry per-tenant results, the
// aggregation grows per-tenant distributions, and the table renders tenant
// sub-lines — while the aggregate CSV schema stays at its fixed 17 columns.
func TestSweepSurfacesTenants(t *testing.T) {
	doc := `{
	  "name": "tenants",
	  "base": ` + tenantBase + `,
	  "seeds": [1, 2]
	}`
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := (&Engine{Workers: 2}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %+v", rep.Results)
	}
	for _, res := range rep.Results {
		if len(res.Tenants) != 2 || res.Tenants[0].Name != "front" || res.Tenants[1].Name != "batch" {
			t.Fatalf("job tenants = %+v", res.Tenants)
		}
		spend := res.Tenants[0].SpendUSD + res.Tenants[1].SpendUSD
		if spend <= 0 || spend > res.CostUSD+1e-9 {
			t.Fatalf("tenant spend %v vs job cost %v", spend, res.CostUSD)
		}
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %+v", rep.Rows)
	}
	row := rep.Rows[0]
	if len(row.Tenants) != 2 || row.Tenants[0].Name != "front" {
		t.Fatalf("aggregated tenants = %+v", row.Tenants)
	}
	if row.Tenants[0].Omega.Mean <= 0 {
		t.Fatalf("front omega distribution = %+v", row.Tenants[0].Omega)
	}
	table := rep.Table()
	if !strings.Contains(table, "tenant front") || !strings.Contains(table, "tenant batch") {
		t.Fatalf("table missing tenant sub-lines:\n%s", table)
	}
	var csv strings.Builder
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(csv.String(), "\n", 2)[0]
	if got := len(strings.Split(header, ",")); got != 17 {
		t.Fatalf("aggregate CSV header has %d columns, want 17: %s", got, header)
	}
}
