package floe

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// apply runs one operator instance over the payloads, collecting outputs.
func apply(t *testing.T, f Factory, inputs ...any) []any {
	t.Helper()
	op := f()
	var out []any
	for _, in := range inputs {
		o, err := op.OnMessage(in)
		if err != nil {
			t.Fatalf("OnMessage(%v): %v", in, err)
		}
		out = append(out, o...)
	}
	return out
}

func TestMap(t *testing.T) {
	double := Map(func(p any) (any, error) { return p.(int) * 2, nil })
	out := apply(t, double, 1, 2, 3)
	if len(out) != 3 || out[0] != 2 || out[2] != 6 {
		t.Fatalf("out = %v", out)
	}
	failing := Map(func(any) (any, error) { return nil, errors.New("x") })
	if _, err := failing().OnMessage(1); err == nil {
		t.Fatal("error swallowed")
	}
}

func TestFilter(t *testing.T) {
	evens := Filter(func(p any) bool { return p.(int)%2 == 0 })
	out := apply(t, evens, 1, 2, 3, 4)
	if len(out) != 2 || out[0] != 2 || out[1] != 4 {
		t.Fatalf("out = %v", out)
	}
}

func TestFlatMapAndPassthroughAndDiscard(t *testing.T) {
	split := FlatMap(func(p any) ([]any, error) {
		var out []any
		for _, w := range strings.Fields(p.(string)) {
			out = append(out, w)
		}
		return out, nil
	})
	out := apply(t, split, "a b c")
	if len(out) != 3 || out[1] != "b" {
		t.Fatalf("out = %v", out)
	}
	if got := apply(t, Passthrough(), "x"); len(got) != 1 || got[0] != "x" {
		t.Fatalf("passthrough = %v", got)
	}
	if got := apply(t, Discard(), "x", "y"); len(got) != 0 {
		t.Fatalf("discard leaked %v", got)
	}
}

func TestTumblingCountWindow(t *testing.T) {
	w := TumblingCountWindow(3)
	out := apply(t, w, 1, 2, 3, 4, 5, 6, 7)
	if len(out) != 2 {
		t.Fatalf("windows = %d", len(out))
	}
	first := out[0].([]any)
	if len(first) != 3 || first[0] != 1 || first[2] != 3 {
		t.Fatalf("window 1 = %v", first)
	}
	second := out[1].([]any)
	if second[0] != 4 {
		t.Fatalf("window 2 = %v", second)
	}
	// n < 1 clamps to 1.
	if got := apply(t, TumblingCountWindow(0), "a"); len(got) != 1 {
		t.Fatalf("clamped window = %v", got)
	}
	// Separate instances do not share state.
	a, b := w(), w()
	_, _ = a.OnMessage(1)
	out2, _ := b.OnMessage(2)
	if out2 != nil {
		t.Fatal("windows shared state across instances")
	}
}

func TestKeyedCount(t *testing.T) {
	kc := KeyedCount(func(p any) (string, error) { return p.(string), nil })
	out := apply(t, kc, "a", "b", "a")
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	last := out[2].(KeyCount)
	if last.Key != "a" || last.Count != 2 {
		t.Fatalf("last = %+v", last)
	}
	bad := KeyedCount(func(any) (string, error) { return "", errors.New("nope") })
	if _, err := bad().OnMessage(1); err == nil {
		t.Fatal("key error swallowed")
	}
}

func TestSample(t *testing.T) {
	out := apply(t, Sample(3), 1, 2, 3, 4, 5, 6, 7)
	if len(out) != 2 || out[0] != 3 || out[1] != 6 {
		t.Fatalf("out = %v", out)
	}
	if got := apply(t, Sample(0), 1, 2); len(got) != 2 {
		t.Fatalf("k=0 clamp = %v", got)
	}
}

func TestReduce(t *testing.T) {
	sum := Reduce(
		func() any { return 0 },
		func(acc, p any) (any, error) { return acc.(int) + p.(int), nil },
	)
	out := apply(t, sum, 1, 2, 3)
	if len(out) != 3 || out[2] != 6 {
		t.Fatalf("out = %v", out)
	}
	failing := Reduce(func() any { return 0 }, func(acc, p any) (any, error) { return nil, errors.New("x") })
	if _, err := failing().OnMessage(1); err == nil {
		t.Fatal("reduce error swallowed")
	}
}

func TestTypeGuard(t *testing.T) {
	guarded := TypeGuard[int](Passthrough())
	if got := apply(t, guarded, 7); got[0] != 7 {
		t.Fatalf("guarded passthrough = %v", got)
	}
	if _, err := guarded().OnMessage("oops"); err == nil {
		t.Fatal("type confusion not caught")
	}
}

func TestKeyedShardedConsistentUnderParallelism(t *testing.T) {
	// Per-key counters must be exact with 8 workers hammering the PE:
	// KeyedSharded serializes each shard while shards run in parallel.
	g := chain2()
	keyed := KeyedSharded(4,
		func(p any) (string, error) { return p.(string), nil },
		func() Operator {
			counts := map[string]int{}
			return OperatorFunc(func(p any) ([]any, error) {
				k := p.(string)
				counts[k]++
				return []any{KeyCount{Key: k, Count: counts[k]}}, nil
			})
		})
	rt := mustRuntime(t, Config{Graph: g, QueueLen: 2048, Impls: map[int][]Impl{
		0: {{Name: "only", New: Passthrough()}},
		1: {{Name: "only", New: keyed}},
	}})
	out, _ := rt.Subscribe(1)
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if err := rt.SetParallelism(1, 8); err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "b", "c", "d", "e"}
	const perKey = 100
	go func() {
		for i := 0; i < perKey; i++ {
			for _, k := range keys {
				_ = rt.Ingest(0, k)
			}
		}
	}()
	final := map[string]int{}
	for i := 0; i < perKey*len(keys); i++ {
		select {
		case m := <-out:
			kc := m.Payload.(KeyCount)
			if kc.Count > final[kc.Key] {
				final[kc.Key] = kc.Count
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timeout at %d", i)
		}
	}
	for _, k := range keys {
		if final[k] != perKey {
			t.Fatalf("key %s counted %d, want %d (lost or duplicated updates)", k, final[k], perKey)
		}
	}
}

func TestKeyedShardedErrorsAndClamp(t *testing.T) {
	bad := KeyedSharded(0,
		func(any) (string, error) { return "", errors.New("no key") },
		func() Operator { return Passthrough()() })
	if _, err := bad().OnMessage(1); err == nil {
		t.Fatal("key error swallowed")
	}
	ok := KeyedSharded(2,
		func(p any) (string, error) { return "k", nil },
		func() Operator { return Passthrough()() })
	if got, err := ok().OnMessage("x"); err != nil || len(got) != 1 {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestOpsComposeInRuntime(t *testing.T) {
	// words -> (choice of precise/sampled counting) via alternates, with
	// the ops library building both implementations.
	g := chain2()
	rt := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: FlatMap(func(p any) ([]any, error) {
			var out []any
			for _, w := range strings.Fields(p.(string)) {
				out = append(out, w)
			}
			return out, nil
		})}},
		1: {{Name: "only", New: KeyedCount(func(p any) (string, error) { return p.(string), nil })}},
	}})
	out, _ := rt.Subscribe(1)
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if err := rt.Ingest(0, "to be or not to be"); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 6; i++ {
		m := <-out
		kc := m.Payload.(KeyCount)
		counts[kc.Key] = kc.Count
	}
	if counts["to"] != 2 || counts["be"] != 2 || counts["or"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}
