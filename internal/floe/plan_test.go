package floe

import (
	"context"
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/core"
	"dynamicdf/internal/dataflow"
)

func TestApplyPlanFromSimulatorPlanning(t *testing.T) {
	// Plan against the cloud model, then execute the same decisions here:
	// the paper's deployment pipeline end to end.
	g := dataflow.NewBuilder().
		AddPE("src", dataflow.Alt("only", 1, 0.2, 1)).
		AddPE("work",
			dataflow.Alt("precise", 1.0, 1.2, 1),
			dataflow.Alt("fast", 0.85, 0.6, 1)).
		AddPE("sink", dataflow.Alt("only", 1, 0.1, 1)).
		Chain("src", "work", "sink").
		MustBuild()
	sel, err := core.SelectAlternates(g, core.Global)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.PlanAllocation(g, cloud.MustMenu(cloud.AWS2013Classes()), sel,
		dataflow.DefaultRouting(g), dataflow.InputRates{0: 12}, 0.9, core.Global)
	if err != nil {
		t.Fatal(err)
	}
	workers := plan.Workers(g.N())
	if workers[1] < 2 {
		t.Fatalf("plan gave work only %d cores — scenario too small", workers[1])
	}

	rt2 := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: passthrough}},
		1: {{Name: "precise", New: tagger("precise")}, {Name: "fast", New: tagger("fast")}},
		2: {{Name: "only", New: passthrough}},
	}})
	out, _ := rt2.Subscribe(2)
	if err := rt2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt2.Stop()

	if err := rt2.ApplyPlan(workers, sel); err != nil {
		t.Fatal(err)
	}
	st, _ := rt2.Stats(1)
	if st.Workers != workers[1] {
		t.Fatalf("work pool = %d, plan said %d", st.Workers, workers[1])
	}
	if st.Alternate != sel[1] {
		t.Fatalf("alternate = %d, plan said %d", st.Alternate, sel[1])
	}
	// The planned alternate actually runs.
	_ = rt2.Ingest(0, "m")
	m := <-out
	want := "m:fast" // SelectAlternates(Global) picks fast (0.85/0.7 vs 1.0/1.3 downstream-weighted)
	if sel[1] == 0 {
		want = "m:precise"
	}
	if m.Payload.(string) != want {
		t.Fatalf("payload = %v, want %v", m.Payload, want)
	}
}

func TestApplyPlanValidation(t *testing.T) {
	g := chain2()
	rt := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: passthrough}},
		1: {{Name: "only", New: passthrough}},
	}})
	if err := rt.ApplyPlan([]int{1, 1}, nil); err == nil {
		t.Fatal("apply before start accepted")
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if err := rt.ApplyPlan([]int{1}, nil); err == nil {
		t.Fatal("short workers accepted")
	}
	if err := rt.ApplyPlan(nil, []int{0}); err == nil {
		t.Fatal("short alternates accepted")
	}
	if err := rt.ApplyPlan(nil, []int{0, 9}); err == nil {
		t.Fatal("bad alternate accepted")
	}
	// Zero workers clamp to 1.
	if err := rt.ApplyPlan([]int{0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	st, _ := rt.Stats(0)
	if st.Workers != 1 {
		t.Fatalf("workers = %d", st.Workers)
	}
}
