package floe

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dynamicdf/internal/dataflow"
)

// passthrough emits its input unchanged.
func passthrough() Operator {
	return OperatorFunc(func(p any) ([]any, error) { return []any{p}, nil })
}

// doubler emits the input twice (selectivity 2).
func doubler() Operator {
	return OperatorFunc(func(p any) ([]any, error) { return []any{p, p}, nil })
}

// dropper consumes everything (selectivity 0).
func dropper() Operator {
	return OperatorFunc(func(any) ([]any, error) { return nil, nil })
}

// failing returns an error for every message.
func failing() Operator {
	return OperatorFunc(func(any) ([]any, error) { return nil, errors.New("boom") })
}

// tagger appends a tag to string payloads, identifying which alternate ran.
func tagger(tag string) Factory {
	return func() Operator {
		return OperatorFunc(func(p any) ([]any, error) {
			return []any{fmt.Sprintf("%v:%s", p, tag)}, nil
		})
	}
}

func chain2() *dataflow.Graph {
	return dataflow.NewBuilder().
		AddPE("src", dataflow.Alt("only", 1, 0.1, 1)).
		AddPE("sink", dataflow.Alt("only", 1, 0.1, 1)).
		Chain("src", "sink").
		MustBuild()
}

func mustRuntime(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	g := chain2()
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := New(Config{Graph: g, QueueLen: -1}); err == nil {
		t.Fatal("negative queue accepted")
	}
	// Missing impl.
	if _, err := New(Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: passthrough}},
	}}); err == nil {
		t.Fatal("missing impl accepted")
	}
	// Wrong name.
	if _, err := New(Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "ghost", New: passthrough}},
		1: {{Name: "only", New: passthrough}},
	}}); err == nil {
		t.Fatal("misnamed impl accepted")
	}
	// Nil factory.
	if _, err := New(Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: nil}},
		1: {{Name: "only", New: passthrough}},
	}}); err == nil {
		t.Fatal("nil factory accepted")
	}
	// Duplicate impl name.
	if _, err := New(Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: passthrough}, {Name: "only", New: passthrough}},
		1: {{Name: "only", New: passthrough}},
	}}); err == nil {
		t.Fatal("duplicate impl accepted")
	}
}

func TestEndToEndFlow(t *testing.T) {
	g := chain2()
	r := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: passthrough}},
		1: {{Name: "only", New: passthrough}},
	}})
	out, err := r.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			_ = r.Ingest(0, i)
		}
	}()
	got := map[int]bool{}
	for i := 0; i < n; i++ {
		select {
		case m := <-out:
			got[m.Payload.(int)] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout after %d messages", i)
		}
	}
	if len(got) != n {
		t.Fatalf("received %d distinct payloads", len(got))
	}
	st, _ := r.Stats(1)
	if st.In != n || st.Out != n {
		t.Fatalf("sink stats = %+v", st)
	}
}

func TestAndSplitDuplication(t *testing.T) {
	// src fans out to a and b, both feed sink: every ingested message
	// reaches the sink twice (multi-merge of the duplicated and-split).
	g := dataflow.NewBuilder().
		AddPE("src", dataflow.Alt("only", 1, 0.1, 1)).
		AddPE("a", dataflow.Alt("only", 1, 0.1, 1)).
		AddPE("b", dataflow.Alt("only", 1, 0.1, 1)).
		AddPE("sink", dataflow.Alt("only", 1, 0.1, 1)).
		Connect("src", "a").
		Connect("src", "b").
		Connect("a", "sink").
		Connect("b", "sink").
		MustBuild()
	impls := map[int][]Impl{}
	for pe := 0; pe < 4; pe++ {
		impls[pe] = []Impl{{Name: "only", New: passthrough}}
	}
	r := mustRuntime(t, Config{Graph: g, Impls: impls})
	out, _ := r.Subscribe(3)
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	const n = 50
	for i := 0; i < n; i++ {
		if err := r.Ingest(0, i); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[int]int{}
	for i := 0; i < 2*n; i++ {
		select {
		case m := <-out:
			counts[m.Payload.(int)]++
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout at %d", i)
		}
	}
	for k, c := range counts {
		if c != 2 {
			t.Fatalf("payload %d seen %d times, want 2", k, c)
		}
	}
}

func TestSelectivity(t *testing.T) {
	g := chain2()
	r := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: doubler}},
		1: {{Name: "only", New: passthrough}},
	}})
	out, _ := r.Subscribe(1)
	_ = r.Start(context.Background())
	defer r.Stop()
	for i := 0; i < 10; i++ {
		_ = r.Ingest(0, i)
	}
	for i := 0; i < 20; i++ {
		select {
		case <-out:
		case <-time.After(5 * time.Second):
			t.Fatalf("selectivity-2 output missing at %d", i)
		}
	}
	// Dropper: nothing comes out.
	g2 := chain2()
	r2 := mustRuntime(t, Config{Graph: g2, Impls: map[int][]Impl{
		0: {{Name: "only", New: dropper}},
		1: {{Name: "only", New: passthrough}},
	}})
	out2, _ := r2.Subscribe(1)
	_ = r2.Start(context.Background())
	defer r2.Stop()
	for i := 0; i < 10; i++ {
		_ = r2.Ingest(0, i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-out2:
		t.Fatalf("dropper leaked %v", m.Payload)
	default:
	}
}

func TestOperatorErrorsCounted(t *testing.T) {
	g := chain2()
	r := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: failing}},
		1: {{Name: "only", New: passthrough}},
	}})
	_ = r.Start(context.Background())
	defer r.Stop()
	for i := 0; i < 5; i++ {
		_ = r.Ingest(0, i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st, _ := r.Stats(0)
	if st.Errors != 5 || st.Out != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSwitchAlternateHotSwap(t *testing.T) {
	g := dataflow.NewBuilder().
		AddPE("src", dataflow.Alt("only", 1, 0.1, 1)).
		AddPE("work",
			dataflow.Alt("slow", 1, 1, 1),
			dataflow.Alt("fast", 0.8, 0.5, 1)).
		AddPE("sink", dataflow.Alt("only", 1, 0.1, 1)).
		Chain("src", "work", "sink").
		MustBuild()
	r := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: passthrough}},
		1: {{Name: "slow", New: tagger("slow")}, {Name: "fast", New: tagger("fast")}},
		2: {{Name: "only", New: passthrough}},
	}})
	out, _ := r.Subscribe(2)
	_ = r.Start(context.Background())
	defer r.Stop()

	recv := func() string {
		select {
		case m := <-out:
			return m.Payload.(string)
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
			return ""
		}
	}
	_ = r.Ingest(0, "a")
	if got := recv(); got != "a:slow" {
		t.Fatalf("before switch: %q", got)
	}
	if err := r.SwitchAlternate(1, 1); err != nil {
		t.Fatal(err)
	}
	// Drain so the in-flight generation is consumed before asserting.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	_ = r.Ingest(0, "b")
	if got := recv(); got != "b:fast" {
		t.Fatalf("after switch: %q", got)
	}
	st, _ := r.Stats(1)
	if st.Alternate != 1 {
		t.Fatalf("active alternate = %d", st.Alternate)
	}
	if err := r.SwitchAlternate(1, 9); err == nil {
		t.Fatal("bad alternate accepted")
	}
	if err := r.SwitchAlternate(9, 0); err == nil {
		t.Fatal("bad PE accepted")
	}
}

func TestSetParallelismScalesWorkers(t *testing.T) {
	g := chain2()
	var mu sync.Mutex
	active, peak := 0, 0
	slow := func() Operator {
		return OperatorFunc(func(p any) ([]any, error) {
			mu.Lock()
			active++
			if active > peak {
				peak = active
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			active--
			mu.Unlock()
			return []any{p}, nil
		})
	}
	r := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: slow}},
		1: {{Name: "only", New: passthrough}},
	}})
	out, _ := r.Subscribe(1)
	_ = r.Start(context.Background())
	defer r.Stop()
	if err := r.SetParallelism(0, 8); err != nil {
		t.Fatal(err)
	}
	st, _ := r.Stats(0)
	if st.Workers != 8 {
		t.Fatalf("workers = %d", st.Workers)
	}
	const n = 64
	go func() {
		for i := 0; i < n; i++ {
			_ = r.Ingest(0, i)
		}
	}()
	for i := 0; i < n; i++ {
		select {
		case <-out:
		case <-time.After(10 * time.Second):
			t.Fatalf("timeout at %d", i)
		}
	}
	mu.Lock()
	p := peak
	mu.Unlock()
	if p < 2 {
		t.Fatalf("peak concurrency %d — workers not parallel", p)
	}
	// Scale down.
	if err := r.SetParallelism(0, 1); err != nil {
		t.Fatal(err)
	}
	st, _ = r.Stats(0)
	if st.Workers != 1 {
		t.Fatalf("workers after shrink = %d", st.Workers)
	}
	if err := r.SetParallelism(0, 0); err == nil {
		t.Fatal("parallelism 0 accepted")
	}
	if err := r.SetParallelism(42, 1); err == nil {
		t.Fatal("bad PE accepted")
	}
}

func TestLifecycleErrors(t *testing.T) {
	g := chain2()
	impls := map[int][]Impl{
		0: {{Name: "only", New: passthrough}},
		1: {{Name: "only", New: passthrough}},
	}
	r := mustRuntime(t, Config{Graph: g, Impls: impls})
	if err := r.Ingest(0, 1); err == nil {
		t.Fatal("ingest before start accepted")
	}
	if err := r.SetParallelism(0, 2); err == nil {
		t.Fatal("parallelism before start accepted")
	}
	_ = r.Start(context.Background())
	if err := r.Start(context.Background()); err == nil {
		t.Fatal("double start accepted")
	}
	if _, err := r.Subscribe(1); err == nil {
		t.Fatal("subscribe after start accepted")
	}
	if err := r.Ingest(1, "x"); err == nil {
		t.Fatal("ingest at non-input PE accepted")
	}
	r.Stop()
	r.Stop() // idempotent
	if err := r.Ingest(0, 1); err == nil {
		t.Fatal("ingest after stop accepted")
	}
	if err := r.SetParallelism(0, 2); err == nil {
		t.Fatal("parallelism after stop accepted")
	}
	if _, err := r.Stats(99); err == nil {
		t.Fatal("stats for bad PE accepted")
	}
}

func TestMessageConservation(t *testing.T) {
	// Property: with passthrough operators on the Fig. 1 topology, the
	// sink receives exactly in * (paths from src to sink) messages.
	g := dataflow.Fig1Graph() // E1 -> {E2, E3} -> E4: two paths
	impls := map[int][]Impl{
		0: {{Name: "e1", New: passthrough}},
		1: {{Name: "e1", New: passthrough}, {Name: "e2", New: passthrough}},
		2: {{Name: "e1", New: passthrough}, {Name: "e2", New: passthrough}},
		3: {{Name: "e1", New: passthrough}},
	}
	r := mustRuntime(t, Config{Graph: g, Impls: impls})
	out, _ := r.Subscribe(3)
	_ = r.Start(context.Background())
	defer r.Stop()
	_ = r.SetParallelism(1, 3)
	_ = r.SetParallelism(2, 2)
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			_ = r.Ingest(0, i)
		}
	}()
	seen := 0
	timeout := time.After(10 * time.Second)
	for seen < 2*n {
		select {
		case <-out:
			seen++
		case <-timeout:
			t.Fatalf("got %d of %d", seen, 2*n)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-out:
		t.Fatalf("extra message %v", m.Payload)
	default:
	}
}

func TestOperatorPanicIsolated(t *testing.T) {
	g := chain2()
	panicky := func() Operator {
		return OperatorFunc(func(p any) ([]any, error) {
			if p.(int)%2 == 0 {
				panic("boom")
			}
			return []any{p}, nil
		})
	}
	r := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: panicky}},
		1: {{Name: "only", New: passthrough}},
	}})
	out, _ := r.Subscribe(1)
	_ = r.Start(context.Background())
	defer r.Stop()
	for i := 0; i < 10; i++ {
		if err := r.Ingest(0, i); err != nil {
			t.Fatal(err)
		}
	}
	// Odd payloads survive; even ones panic and are counted as errors.
	for i := 0; i < 5; i++ {
		select {
		case m := <-out:
			if m.Payload.(int)%2 == 0 {
				t.Fatalf("panicking payload %v leaked", m.Payload)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout at %d — runtime died with the panic?", i)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st, _ := r.Stats(0)
	if st.Errors != 5 {
		t.Fatalf("panics counted as %d errors, want 5", st.Errors)
	}
}

func TestContextCancellationStopsWorkers(t *testing.T) {
	g := chain2()
	r := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: passthrough}},
		1: {{Name: "only", New: passthrough}},
	}})
	ctx, cancel := context.WithCancel(context.Background())
	_ = r.Start(ctx)
	cancel()
	// Ingest should fail promptly (context is done).
	deadline := time.After(5 * time.Second)
	for {
		if err := r.Ingest(0, 1); err != nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("ingest kept succeeding after cancel")
		default:
		}
	}
	r.Stop()
}
