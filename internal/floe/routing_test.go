package floe

import (
	"context"
	"testing"
	"time"

	"dynamicdf/internal/dataflow"
)

// choiceRuntime builds in -choice-> {pathA, pathB} -> out with taggers so
// outputs identify the route taken.
func choiceRuntime(t *testing.T) (*Runtime, <-chan Message) {
	t.Helper()
	g := dataflow.NewBuilder().
		AddPE("in", dataflow.Alt("e", 1, 0.1, 1)).
		AddPE("pathA", dataflow.Alt("e", 1.0, 1.0, 1)).
		AddPE("pathB", dataflow.Alt("e", 0.7, 0.4, 1)).
		AddPE("out", dataflow.Alt("e", 1, 0.1, 1)).
		AddChoice("route", "in", "pathA", "pathB").
		Connect("pathA", "out").
		Connect("pathB", "out").
		MustBuild()
	rt := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "e", New: passthrough}},
		1: {{Name: "e", New: tagger("A")}},
		2: {{Name: "e", New: tagger("B")}},
		3: {{Name: "e", New: passthrough}},
	}})
	out, err := rt.Subscribe(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return rt, out
}

func recvString(t *testing.T, out <-chan Message) string {
	t.Helper()
	select {
	case m := <-out:
		return m.Payload.(string)
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
		return ""
	}
}

func TestRuntimeRoutesToActiveTargetOnly(t *testing.T) {
	rt, out := choiceRuntime(t)
	defer rt.Stop()
	// Default route: target 0 (pathA); exactly ONE output per ingest.
	if err := rt.Ingest(0, "m1"); err != nil {
		t.Fatal(err)
	}
	if got := recvString(t, out); got != "m1:A" {
		t.Fatalf("default route output = %q", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-out:
		t.Fatalf("choice duplicated output: %v", m.Payload)
	default:
	}
	// Switch to pathB.
	if err := rt.SelectRoute(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := rt.Ingest(0, "m2"); err != nil {
		t.Fatal(err)
	}
	if got := recvString(t, out); got != "m2:B" {
		t.Fatalf("after switch output = %q", got)
	}
	// pathA never saw m2.
	stA, _ := rt.Stats(1)
	if stA.In != 1 {
		t.Fatalf("pathA consumed %d messages, want 1", stA.In)
	}
}

func TestSelectRouteValidation(t *testing.T) {
	rt, _ := choiceRuntime(t)
	defer rt.Stop()
	if err := rt.SelectRoute(5, 0); err == nil {
		t.Fatal("bad group accepted")
	}
	if err := rt.SelectRoute(0, 9); err == nil {
		t.Fatal("bad target accepted")
	}
}
