package floe

import (
	"context"
	"testing"
	"time"

	"dynamicdf/internal/dataflow"
)

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(nil, ControllerConfig{}); err == nil {
		t.Fatal("nil runtime accepted")
	}
	g := chain2()
	rt := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: passthrough}},
		1: {{Name: "only", New: passthrough}},
	}})
	if _, err := NewController(rt, ControllerConfig{Interval: time.Nanosecond}); err == nil {
		t.Fatal("tiny interval accepted")
	}
	if _, err := NewController(rt, ControllerConfig{MaxWorkersPerPE: -1}); err == nil {
		t.Fatal("negative workers accepted")
	}
	c, err := NewController(rt, ControllerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.MaxWorkersPerPE != 8 || c.cfg.CalmIntervals != 5 {
		t.Fatalf("defaults = %+v", c.cfg)
	}
}

func TestControllerScalesUpUnderPressure(t *testing.T) {
	g := chain2()
	slow := func() Operator {
		return OperatorFunc(func(p any) ([]any, error) {
			time.Sleep(2 * time.Millisecond)
			return []any{p}, nil
		})
	}
	rt := mustRuntime(t, Config{Graph: g, QueueLen: 64, Impls: map[int][]Impl{
		0: {{Name: "only", New: passthrough}},
		1: {{Name: "only", New: slow}},
	}})
	out, _ := rt.Subscribe(1)
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	ctrl, err := NewController(rt, ControllerConfig{
		Interval:        5 * time.Millisecond,
		MaxWorkersPerPE: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = ctrl.Run(ctx) }()

	const n = 600
	go func() {
		for i := 0; i < n; i++ {
			_ = rt.Ingest(0, i)
		}
	}()
	received := 0
	deadline := time.After(30 * time.Second)
	for received < n {
		select {
		case <-out:
			received++
		case <-deadline:
			t.Fatalf("only %d/%d received", received, n)
		}
	}
	st, _ := rt.Stats(1)
	if st.Workers < 2 {
		t.Fatalf("controller never scaled up: workers = %d", st.Workers)
	}
	// A scale-up decision must have been published.
	sawScaleUp := false
	for {
		select {
		case d := <-ctrl.Decisions():
			if d.Action == "scale-up" {
				sawScaleUp = true
			}
			continue
		default:
		}
		break
	}
	if !sawScaleUp {
		t.Fatal("no scale-up decision observed")
	}
}

func TestControllerDowngradesWhenSaturated(t *testing.T) {
	g := dataflow.NewBuilder().
		AddPE("src", dataflow.Alt("only", 1, 0.1, 1)).
		AddPE("work",
			dataflow.Alt("precise", 1.0, 1.0, 1),
			dataflow.Alt("fast", 0.7, 0.2, 1)).
		Chain("src", "work").
		MustBuild()
	slowPrecise := func() Operator {
		return OperatorFunc(func(p any) ([]any, error) {
			time.Sleep(5 * time.Millisecond)
			return []any{p}, nil
		})
	}
	rt := mustRuntime(t, Config{Graph: g, QueueLen: 32, Impls: map[int][]Impl{
		0: {{Name: "only", New: passthrough}},
		1: {{Name: "precise", New: slowPrecise}, {Name: "fast", New: passthrough}},
	}})
	out, _ := rt.Subscribe(1)
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	// Cap workers at 1: the only relief is the cheap alternate.
	ctrl, err := NewController(rt, ControllerConfig{
		Interval:        5 * time.Millisecond,
		MaxWorkersPerPE: 1,
		Dynamic:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = ctrl.Run(ctx) }()

	const n = 400
	go func() {
		for i := 0; i < n; i++ {
			_ = rt.Ingest(0, i)
		}
	}()
	received := 0
	deadline := time.After(30 * time.Second)
	for received < n {
		select {
		case <-out:
			received++
		case <-deadline:
			t.Fatalf("only %d/%d received", received, n)
		}
	}
	st, _ := rt.Stats(1)
	if st.Alternate != 1 {
		t.Fatalf("controller never downgraded: alternate = %d", st.Alternate)
	}
}

func TestCheaperRicherAlternateOrdering(t *testing.T) {
	g := dataflow.NewBuilder().
		AddPE("src", dataflow.Alt("only", 1, 0.1, 1)).
		AddPE("work",
			dataflow.Alt("mid", 0.9, 0.5, 1),
			dataflow.Alt("cheap", 0.7, 0.2, 1),
			dataflow.Alt("rich", 1.0, 1.0, 1)).
		Chain("src", "work").
		MustBuild()
	rt := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: passthrough}},
		1: {
			{Name: "mid", New: passthrough},
			{Name: "cheap", New: passthrough},
			{Name: "rich", New: passthrough},
		},
	}})
	c, err := NewController(rt, ControllerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Cost order: cheap(1, 0.2) < mid(0, 0.5) < rich(2, 1.0).
	if next, ok := c.cheaperAlternate(1, 0); !ok || next != 1 {
		t.Fatalf("cheaper(mid) = %d %v", next, ok)
	}
	if _, ok := c.cheaperAlternate(1, 1); ok {
		t.Fatal("cheap has no cheaper alternate")
	}
	if next, ok := c.richerAlternate(1, 0); !ok || next != 2 {
		t.Fatalf("richer(mid) = %d %v", next, ok)
	}
	if _, ok := c.richerAlternate(1, 2); ok {
		t.Fatal("rich has no richer alternate")
	}
}
