package floe

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Controller is a feedback controller that drives a running Runtime the way
// the paper's runtime heuristics drive the simulated cloud (§5's two
// control knobs, live): it watches each PE's queue depth and consumption
// rate, widens or shrinks data-parallel worker pools, and — when a pool is
// saturated at its bound — exercises application dynamism by switching to
// a cheaper alternate, upgrading back once pressure subsides.
type Controller struct {
	rt  *Runtime
	cfg ControllerConfig

	lastIn   []uint64
	calmFor  []int
	byCost   [][]int // per PE: alternate indices sorted by ascending cost
	decision chan Decision
}

// ControllerConfig tunes the control loop.
type ControllerConfig struct {
	// Interval is the control period (default 100 ms).
	Interval time.Duration
	// MaxWorkersPerPE bounds pool growth (default 8).
	MaxWorkersPerPE int
	// HighWatermark is the queue depth (messages) that triggers scale-up
	// (default: a quarter of the runtime's queue length).
	HighWatermark int
	// CalmIntervals is how many consecutive relaxed intervals precede a
	// scale-down or an alternate upgrade (default 5).
	CalmIntervals int
	// Dynamic enables alternate switching (default resource-only).
	Dynamic bool
}

// Decision describes one control action, published for observability.
type Decision struct {
	PE     int
	Action string // "scale-up" | "scale-down" | "downgrade" | "upgrade"
	Detail string
}

// NewController validates the configuration against the runtime.
func NewController(rt *Runtime, cfg ControllerConfig) (*Controller, error) {
	if rt == nil {
		return nil, errors.New("floe: controller needs a runtime")
	}
	if cfg.Interval == 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.Interval < time.Millisecond {
		return nil, fmt.Errorf("floe: control interval %v too small", cfg.Interval)
	}
	if cfg.MaxWorkersPerPE == 0 {
		cfg.MaxWorkersPerPE = 8
	}
	if cfg.MaxWorkersPerPE < 1 {
		return nil, fmt.Errorf("floe: max workers %d < 1", cfg.MaxWorkersPerPE)
	}
	if cfg.HighWatermark == 0 {
		cfg.HighWatermark = rt.queueLen / 4
		if cfg.HighWatermark < 1 {
			cfg.HighWatermark = 1
		}
	}
	if cfg.CalmIntervals == 0 {
		cfg.CalmIntervals = 5
	}
	n := rt.g.N()
	c := &Controller{
		rt:       rt,
		cfg:      cfg,
		lastIn:   make([]uint64, n),
		calmFor:  make([]int, n),
		byCost:   make([][]int, n),
		decision: make(chan Decision, 256),
	}
	for pe, p := range rt.g.PEs {
		idx := make([]int, len(p.Alternates))
		for i := range idx {
			idx[i] = i
		}
		alts := p.Alternates
		sort.SliceStable(idx, func(a, b int) bool { return alts[idx[a]].Cost < alts[idx[b]].Cost })
		c.byCost[pe] = idx
	}
	return c, nil
}

// Decisions exposes the action stream (non-blocking producer: actions are
// dropped when the buffer is full).
func (c *Controller) Decisions() <-chan Decision { return c.decision }

// Run loops until the context is done. Call it on its own goroutine.
func (c *Controller) Run(ctx context.Context) error {
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			if err := c.tick(); err != nil {
				return err
			}
		}
	}
}

// tick runs one control round.
func (c *Controller) tick() error {
	g := c.rt.g
	for pe := 0; pe < g.N(); pe++ {
		st, err := c.rt.Stats(pe)
		if err != nil {
			return err
		}
		consumed := st.In - c.lastIn[pe]
		c.lastIn[pe] = st.In

		pressured := st.Queue >= c.cfg.HighWatermark
		if pressured {
			c.calmFor[pe] = 0
			if st.Workers < c.cfg.MaxWorkersPerPE {
				if err := c.rt.SetParallelism(pe, st.Workers+1); err != nil {
					return err
				}
				c.emit(Decision{PE: pe, Action: "scale-up",
					Detail: fmt.Sprintf("queue %d, workers %d->%d", st.Queue, st.Workers, st.Workers+1)})
				continue
			}
			// Saturated at the bound: application dynamism is the
			// remaining control.
			if c.cfg.Dynamic {
				if next, ok := c.cheaperAlternate(pe, st.Alternate); ok {
					if err := c.rt.SwitchAlternate(pe, next); err != nil {
						return err
					}
					c.emit(Decision{PE: pe, Action: "downgrade",
						Detail: fmt.Sprintf("alternate %d->%d at %d workers", st.Alternate, next, st.Workers)})
				}
			}
			continue
		}

		// Relaxed: count calm intervals, then shed capacity / buy back
		// value, one step per calm streak.
		c.calmFor[pe]++
		if c.calmFor[pe] < c.cfg.CalmIntervals {
			continue
		}
		c.calmFor[pe] = 0
		if c.cfg.Dynamic {
			if prev, ok := c.richerAlternate(pe, st.Alternate); ok {
				if err := c.rt.SwitchAlternate(pe, prev); err != nil {
					return err
				}
				c.emit(Decision{PE: pe, Action: "upgrade",
					Detail: fmt.Sprintf("alternate %d->%d", st.Alternate, prev)})
				continue
			}
		}
		if st.Workers > 1 && consumed == 0 && st.Queue == 0 {
			if err := c.rt.SetParallelism(pe, st.Workers-1); err != nil {
				return err
			}
			c.emit(Decision{PE: pe, Action: "scale-down",
				Detail: fmt.Sprintf("idle, workers %d->%d", st.Workers, st.Workers-1)})
		}
	}
	return nil
}

// cheaperAlternate returns the next cheaper alternate than current, if any.
func (c *Controller) cheaperAlternate(pe, current int) (int, bool) {
	order := c.byCost[pe]
	for i, alt := range order {
		if alt == current && i > 0 {
			return order[i-1], true
		}
	}
	return 0, false
}

// richerAlternate returns the next costlier (higher-value) alternate.
func (c *Controller) richerAlternate(pe, current int) (int, bool) {
	order := c.byCost[pe]
	for i, alt := range order {
		if alt == current && i+1 < len(order) {
			return order[i+1], true
		}
	}
	return 0, false
}

func (c *Controller) emit(d Decision) {
	select {
	case c.decision <- d:
	default:
	}
}
