// Package floe is an in-process continuous-dataflow execution runtime —
// the role the FTOC/Floe framework plays in the paper (§5): long-running
// PEs consume messages from their input ports, process them on a pool of
// data-parallel workers, and emit results onto outgoing edges with
// and-split/multi-merge semantics. Alternates can be hot-swapped and worker
// pools resized while messages flow, because PEs are stateless across
// messages (or keep state only within one worker), exactly the execution
// contract §5 assumes so that the scheduling heuristics can act freely.
//
// The runtime shares the dataflow.Graph model with the simulator: the same
// graph description can be simulated for planning and then executed for
// real. Simulation answers "what should run where"; floe runs it.
package floe

import (
	"context"
	"errors"
	"fmt"
	gort "runtime"
	"sync"
	"sync/atomic"

	"dynamicdf/internal/dataflow"
)

// yield lets other goroutines run while Drain polls for quiescence.
func yield() { gort.Gosched() }

// safeOnMessage isolates operator panics: a panicking user operator fails
// only its message (counted as an error), never the worker or the runtime —
// the containment a long-running dataflow framework must guarantee.
func safeOnMessage(op Operator, payload any) (outs []any, err error) {
	defer func() {
		if r := recover(); r != nil {
			outs = nil
			err = fmt.Errorf("floe: operator panicked: %v", r)
		}
	}()
	return op.OnMessage(payload)
}

// Message is one data item flowing through the runtime.
type Message struct {
	// Payload is the user data.
	Payload any
	// SeqNo is assigned at ingest and preserved through the flow for
	// tracing; operators emitting multiple outputs share the input's SeqNo.
	SeqNo uint64
}

// Operator is one alternate's implementation: it consumes a message and
// returns zero or more outputs. Implementations must be safe for
// concurrent use by multiple workers OR be created per worker via Factory.
type Operator interface {
	// OnMessage processes one message payload and returns output payloads.
	OnMessage(payload any) ([]any, error)
}

// OperatorFunc adapts a function to the Operator interface.
type OperatorFunc func(payload any) ([]any, error)

// OnMessage implements Operator.
func (f OperatorFunc) OnMessage(payload any) ([]any, error) { return f(payload) }

// Factory creates a fresh Operator instance for one worker. Workers never
// share instances, so operators may keep per-worker state.
type Factory func() Operator

// Impl binds an alternate name (matching the graph's Alternate.Name) to its
// executable implementation.
type Impl struct {
	Name string
	New  Factory
}

// Config assembles a runtime.
type Config struct {
	// Graph is the dataflow to execute; every PE's alternates must have a
	// matching Impl.
	Graph *dataflow.Graph
	// Impls maps PE index -> implementations of its alternates.
	Impls map[int][]Impl
	// QueueLen is each PE's input buffer capacity (default 1024). Senders
	// block when the buffer is full — natural backpressure.
	QueueLen int
}

// PEStats is a snapshot of one PE's counters.
type PEStats struct {
	In        uint64 // messages consumed
	Out       uint64 // messages emitted
	Errors    uint64 // operator errors (message dropped)
	Queue     int    // messages waiting in the input buffer
	Workers   int    // current worker-pool size
	Alternate int    // active alternate index
}

// Runtime executes a dataflow.
type Runtime struct {
	g        *dataflow.Graph
	impls    [][]Factory
	queueLen int

	in   []chan Message // per-PE input buffer
	pes  []*peState
	subs []chan Message // per-output-PE subscriber fan-in

	seq     atomic.Uint64
	started atomic.Bool
	stopped atomic.Bool
	wg      sync.WaitGroup // all worker goroutines
	ctx     context.Context
	cancel  context.CancelFunc
	topo    []int // PE scan order for quiescence detection

	// routing[group] holds the active target index of each choice group
	// (dynamic paths); atomic so SelectRoute is safe mid-flow.
	routing []atomic.Int64
}

// peState holds one PE's runtime control block.
type peState struct {
	mu        sync.Mutex
	workers   []chan struct{} // per-worker quit channels
	alternate atomic.Int64
	gen       atomic.Int64 // bumped on alternate switch

	in, out, errs atomic.Uint64
	// done counts consumed messages whose processing fully finished
	// (including delivery); in == done means the PE is quiescent.
	done atomic.Uint64
}

// New validates the configuration and builds a runtime (not yet started).
func New(cfg Config) (*Runtime, error) {
	if cfg.Graph == nil {
		return nil, errors.New("floe: config needs a graph")
	}
	if cfg.QueueLen == 0 {
		cfg.QueueLen = 1024
	}
	if cfg.QueueLen < 1 {
		return nil, fmt.Errorf("floe: queue length %d < 1", cfg.QueueLen)
	}
	g := cfg.Graph
	impls := make([][]Factory, g.N())
	for pe, p := range g.PEs {
		given := cfg.Impls[pe]
		byName := make(map[string]Factory, len(given))
		for _, im := range given {
			if im.New == nil {
				return nil, fmt.Errorf("floe: PE %q impl %q has nil factory", p.Name, im.Name)
			}
			if _, dup := byName[im.Name]; dup {
				return nil, fmt.Errorf("floe: PE %q: duplicate impl %q", p.Name, im.Name)
			}
			byName[im.Name] = im.New
		}
		impls[pe] = make([]Factory, len(p.Alternates))
		for j, a := range p.Alternates {
			f, ok := byName[a.Name]
			if !ok {
				return nil, fmt.Errorf("floe: PE %q: no implementation for alternate %q", p.Name, a.Name)
			}
			impls[pe][j] = f
		}
		if len(byName) != len(p.Alternates) {
			return nil, fmt.Errorf("floe: PE %q: %d impls for %d alternates", p.Name, len(byName), len(p.Alternates))
		}
	}
	r := &Runtime{
		g:        g,
		impls:    impls,
		queueLen: cfg.QueueLen,
		in:       make([]chan Message, g.N()),
		pes:      make([]*peState, g.N()),
		subs:     make([]chan Message, g.N()),
	}
	for i := 0; i < g.N(); i++ {
		r.in[i] = make(chan Message, cfg.QueueLen)
		r.pes[i] = &peState{}
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	r.topo = topo
	r.routing = make([]atomic.Int64, len(g.Choices))
	return r, nil
}

// SelectRoute activates target index target of choice group group — the
// runtime counterpart of the simulator's dynamic-paths control. In-flight
// messages already delivered to the previous route finish there; new
// output follows the new route.
func (r *Runtime) SelectRoute(group, target int) error {
	if group < 0 || group >= len(r.g.Choices) {
		return fmt.Errorf("floe: unknown choice group %d", group)
	}
	if target < 0 || target >= len(r.g.Choices[group].Targets) {
		return fmt.Errorf("floe: choice group %q has no target %d", r.g.Choices[group].Name, target)
	}
	r.routing[group].Store(int64(target))
	return nil
}

// activeSuccessors resolves pe's delivery targets under the current
// routing: plain successors keep and-split duplication; choice groups
// contribute only their active target.
func (r *Runtime) activeSuccessors(pe int) []int {
	succ := r.g.Successors(pe)
	if len(r.g.Choices) == 0 {
		return succ
	}
	inactive := map[int]bool{}
	hasGroup := false
	for gi := range r.g.Choices {
		c := &r.g.Choices[gi]
		if c.From != pe {
			continue
		}
		hasGroup = true
		active := int(r.routing[gi].Load())
		for ti, t := range c.Targets {
			if ti != active {
				inactive[t] = true
			}
		}
	}
	if !hasGroup {
		return succ
	}
	out := make([]int, 0, len(succ))
	for _, s := range succ {
		if !inactive[s] {
			out = append(out, s)
		}
	}
	return out
}

// Start launches one worker per PE and begins processing. The context
// cancels the whole runtime.
func (r *Runtime) Start(ctx context.Context) error {
	if !r.started.CompareAndSwap(false, true) {
		return errors.New("floe: already started")
	}
	r.ctx, r.cancel = context.WithCancel(ctx)
	for pe := 0; pe < r.g.N(); pe++ {
		if err := r.SetParallelism(pe, 1); err != nil {
			return err
		}
	}
	return nil
}

// Ingest feeds an external message into an input PE. It blocks when the
// PE's buffer is full (backpressure) and fails once the runtime stopped.
func (r *Runtime) Ingest(pe int, payload any) error {
	if !r.started.Load() || r.stopped.Load() {
		return errors.New("floe: runtime not running")
	}
	if pe < 0 || pe >= r.g.N() || len(r.g.Predecessors(pe)) != 0 {
		return fmt.Errorf("floe: PE %d is not an input PE", pe)
	}
	msg := Message{Payload: payload, SeqNo: r.seq.Add(1)}
	select {
	case r.in[pe] <- msg:
		return nil
	case <-r.ctx.Done():
		return r.ctx.Err()
	}
}

// Subscribe returns the channel carrying an output PE's emissions. It must
// be called before Start (workers read the subscriber table without
// locks). The channel closes when the runtime stops.
func (r *Runtime) Subscribe(pe int) (<-chan Message, error) {
	if r.started.Load() {
		return nil, errors.New("floe: Subscribe must precede Start")
	}
	if pe < 0 || pe >= r.g.N() || len(r.g.Successors(pe)) != 0 {
		return nil, fmt.Errorf("floe: PE %d is not an output PE", pe)
	}
	if r.subs[pe] == nil {
		r.subs[pe] = make(chan Message, r.queueLen)
	}
	return r.subs[pe], nil
}

// SetParallelism resizes a PE's worker pool to n data-parallel workers —
// the runtime counterpart of assigning CPU cores to a PE.
func (r *Runtime) SetParallelism(pe, n int) error {
	if pe < 0 || pe >= r.g.N() {
		return fmt.Errorf("floe: unknown PE %d", pe)
	}
	if n < 1 {
		return fmt.Errorf("floe: parallelism %d < 1", n)
	}
	if !r.started.Load() {
		return errors.New("floe: not started")
	}
	if r.stopped.Load() {
		return errors.New("floe: stopped")
	}
	st := r.pes[pe]
	st.mu.Lock()
	defer st.mu.Unlock()
	for len(st.workers) < n {
		quit := make(chan struct{})
		st.workers = append(st.workers, quit)
		r.wg.Add(1)
		go r.worker(pe, quit)
	}
	for len(st.workers) > n {
		last := st.workers[len(st.workers)-1]
		st.workers = st.workers[:len(st.workers)-1]
		close(last)
	}
	return nil
}

// SwitchAlternate hot-swaps the PE's active implementation. In-flight
// messages finish on the old implementation; workers pick up the new one
// on their next message (PEs are stateless across messages, §5).
func (r *Runtime) SwitchAlternate(pe, alt int) error {
	if pe < 0 || pe >= r.g.N() {
		return fmt.Errorf("floe: unknown PE %d", pe)
	}
	if alt < 0 || alt >= len(r.impls[pe]) {
		return fmt.Errorf("floe: PE %q has no alternate %d", r.g.PEs[pe].Name, alt)
	}
	st := r.pes[pe]
	st.alternate.Store(int64(alt))
	st.gen.Add(1)
	return nil
}

// Stats snapshots a PE's counters.
func (r *Runtime) Stats(pe int) (PEStats, error) {
	if pe < 0 || pe >= r.g.N() {
		return PEStats{}, fmt.Errorf("floe: unknown PE %d", pe)
	}
	st := r.pes[pe]
	st.mu.Lock()
	workers := len(st.workers)
	st.mu.Unlock()
	return PEStats{
		In:        st.in.Load(),
		Out:       st.out.Load(),
		Errors:    st.errs.Load(),
		Queue:     len(r.in[pe]),
		Workers:   workers,
		Alternate: int(st.alternate.Load()),
	}, nil
}

// Drain waits until every PE input buffer is empty and all in-flight
// messages have been processed, then returns. It does not stop the
// runtime. Callers must stop ingesting first or Drain may never return;
// the context bounds the wait.
func (r *Runtime) Drain(ctx context.Context) error {
	for {
		// Two consecutive idle passes guard against scan races.
		if r.idle() && r.idle() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-r.ctx.Done():
			return r.ctx.Err()
		default:
		}
		yield()
	}
}

// idle reports whether all buffers are empty and no worker is processing.
// The scan walks PEs in topological order: in a DAG, in-flight work only
// moves forward, so work missed at an earlier position is still visible
// when its (later-ordered) holder is scanned.
func (r *Runtime) idle() bool {
	for _, pe := range r.topo {
		if len(r.in[pe]) > 0 {
			return false
		}
		if r.pes[pe].in.Load() != r.pes[pe].done.Load() {
			return false
		}
	}
	return true
}

// Stop cancels all workers, waits for them, and closes subscriber
// channels. The runtime cannot be restarted.
func (r *Runtime) Stop() {
	if !r.stopped.CompareAndSwap(false, true) {
		return
	}
	r.cancel()
	r.wg.Wait()
	for _, ch := range r.subs {
		if ch != nil {
			close(ch)
		}
	}
}

// worker is one data-parallel execution loop for a PE.
func (r *Runtime) worker(pe int, quit chan struct{}) {
	defer r.wg.Done()
	st := r.pes[pe]
	var op Operator
	opGen := int64(-1)
	for {
		select {
		case <-quit:
			return
		case <-r.ctx.Done():
			return
		case msg := <-r.in[pe]:
			st.in.Add(1)
			if gen := st.gen.Load(); gen != opGen || op == nil {
				alt := int(st.alternate.Load())
				op = r.impls[pe][alt]()
				opGen = gen
			}
			outs, err := safeOnMessage(op, msg.Payload)
			if err != nil {
				st.errs.Add(1)
				st.done.Add(1)
				continue
			}
			for _, out := range outs {
				o := Message{Payload: out, SeqNo: msg.SeqNo}
				for _, succ := range r.activeSuccessors(pe) {
					// And-split: duplicate onto every outgoing edge
					// (choice groups route to their active target only).
					select {
					case r.in[succ] <- o:
					case <-r.ctx.Done():
						return
					}
				}
				if sub := r.subs[pe]; sub != nil && len(r.g.Successors(pe)) == 0 {
					select {
					case sub <- o:
					case <-r.ctx.Done():
						return
					}
				}
			}
			st.out.Add(uint64(len(outs)))
			st.done.Add(1)
		}
	}
}
