package floe

import (
	"context"
	"testing"
	"time"
)

func TestTumblingTimeWindow(t *testing.T) {
	// Injected clock: advances 10ms per call.
	tick := 0
	now := func() time.Time {
		tick++
		return time.Unix(0, int64(tick)*int64(10*time.Millisecond))
	}
	w := TumblingTimeWindow(25*time.Millisecond, now)
	op := w()
	var windows [][]any
	for i := 0; i < 10; i++ {
		out, err := op.OnMessage(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range out {
			windows = append(windows, o.([]any))
		}
	}
	if len(windows) < 2 {
		t.Fatalf("windows = %d", len(windows))
	}
	// Every input appears exactly once across emitted windows + pending.
	seen := map[any]bool{}
	for _, win := range windows {
		if len(win) == 0 {
			t.Fatal("empty window emitted")
		}
		for _, p := range win {
			if seen[p] {
				t.Fatalf("payload %v duplicated", p)
			}
			seen[p] = true
		}
	}
	// Defaults: nil clock falls back to time.Now without panicking.
	def := TumblingTimeWindow(time.Hour, nil)()
	if out, err := def.OnMessage("x"); err != nil || out != nil {
		t.Fatalf("first message should buffer: %v %v", out, err)
	}
}

func TestStatsSampler(t *testing.T) {
	g := chain2()
	rt := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: passthrough}},
		1: {{Name: "only", New: passthrough}},
	}})
	out, _ := rt.Subscribe(1)
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	s, err := NewStatsSampler(rt, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = s.Run(ctx) }()
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			_ = rt.Ingest(0, i)
		}
	}()
	for i := 0; i < n; i++ {
		<-out
	}
	// Give the sampler a couple of ticks to observe the flow.
	deadline := time.After(5 * time.Second)
	for s.Collector().Len() < 3 {
		select {
		case <-deadline:
			t.Fatal("sampler produced no points")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	cancel()
	// Total flow observed must account for all messages.
	pts := s.Collector().Points()
	totalOut := 0.0
	for _, p := range pts {
		totalOut += p.OutputRate * 0.01
	}
	if totalOut < n*9/10 {
		t.Fatalf("sampler saw only %v of %d outputs", totalOut, n)
	}
}

func TestNewStatsSamplerValidation(t *testing.T) {
	if _, err := NewStatsSampler(nil, time.Second); err == nil {
		t.Fatal("nil runtime accepted")
	}
	g := chain2()
	rt := mustRuntime(t, Config{Graph: g, Impls: map[int][]Impl{
		0: {{Name: "only", New: passthrough}},
		1: {{Name: "only", New: passthrough}},
	}})
	if _, err := NewStatsSampler(rt, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}
