package floe

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dynamicdf/internal/metrics"
)

// TumblingTimeWindow groups payloads arriving within the same wall-clock
// window (per worker) into one []any batch, emitted with the first payload
// of the next window. now is injectable for tests; nil uses time.Now.
func TumblingTimeWindow(width time.Duration, now func() time.Time) Factory {
	if now == nil {
		now = time.Now
	}
	return func() Operator {
		var buf []any
		var windowStart time.Time
		started := false
		return OperatorFunc(func(p any) ([]any, error) {
			t := now()
			if !started {
				started = true
				windowStart = t
			}
			if t.Sub(windowStart) >= width && len(buf) > 0 {
				window := make([]any, len(buf))
				copy(window, buf)
				buf = buf[:0]
				buf = append(buf, p)
				windowStart = t
				return []any{window}, nil
			}
			buf = append(buf, p)
			return nil, nil
		})
	}
}

// StatsSampler periodically snapshots a runtime's aggregate counters into
// a metrics.Collector, giving live executions the same per-interval series
// the simulator produces (throughput in/out, queue backlog, worker count).
type StatsSampler struct {
	rt       *Runtime
	interval time.Duration
	coll     *metrics.Collector

	lastIn, lastOut uint64
	start           time.Time
}

// NewStatsSampler validates and builds a sampler.
func NewStatsSampler(rt *Runtime, interval time.Duration) (*StatsSampler, error) {
	if rt == nil {
		return nil, errors.New("floe: sampler needs a runtime")
	}
	if interval < time.Millisecond {
		return nil, fmt.Errorf("floe: sample interval %v too small", interval)
	}
	return &StatsSampler{rt: rt, interval: interval, coll: metrics.NewCollector()}, nil
}

// Collector returns the accumulating series.
func (s *StatsSampler) Collector() *metrics.Collector { return s.coll }

// Run samples until the context is done. Call it on its own goroutine.
func (s *StatsSampler) Run(ctx context.Context) error {
	s.start = time.Now()
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			if err := s.sample(); err != nil {
				return err
			}
		}
	}
}

// sample records one point aggregated over all PEs.
func (s *StatsSampler) sample() error {
	g := s.rt.g
	var in, out uint64
	backlog := 0.0
	workers := 0
	for pe := 0; pe < g.N(); pe++ {
		st, err := s.rt.Stats(pe)
		if err != nil {
			return err
		}
		backlog += float64(st.Queue)
		workers += st.Workers
		if len(g.Predecessors(pe)) == 0 {
			in += st.In
		}
		if len(g.Successors(pe)) == 0 {
			out += st.Out
		}
	}
	secs := s.interval.Seconds()
	point := metrics.Point{
		Sec:        int64(time.Since(s.start) / time.Second),
		InputRate:  float64(in-s.lastIn) / secs,
		OutputRate: float64(out-s.lastOut) / secs,
		Backlog:    backlog,
		UsedCores:  workers,
		Gamma:      1, // live runs do not price value; series kept compatible
		Omega:      1,
	}
	s.lastIn, s.lastOut = in, out
	return s.coll.Add(point)
}
