package floe

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// This file provides a small library of ready-made operators — the
// building blocks users compose alternates from. Stateful operators keep
// state per worker (the §5 contract: PEs are stateless across messages or
// share state only within one instance), so they compose safely with
// SetParallelism and SwitchAlternate.

// Map applies f to every payload, one output per input.
func Map(f func(any) (any, error)) Factory {
	return func() Operator {
		return OperatorFunc(func(p any) ([]any, error) {
			out, err := f(p)
			if err != nil {
				return nil, err
			}
			return []any{out}, nil
		})
	}
}

// Filter keeps payloads for which pred returns true (selectivity = the
// pass rate).
func Filter(pred func(any) bool) Factory {
	return func() Operator {
		return OperatorFunc(func(p any) ([]any, error) {
			if pred(p) {
				return []any{p}, nil
			}
			return nil, nil
		})
	}
}

// FlatMap applies f to every payload, emitting all returned outputs
// (selectivity = the average fan-out).
func FlatMap(f func(any) ([]any, error)) Factory {
	return func() Operator {
		return OperatorFunc(f)
	}
}

// Passthrough forwards every payload unchanged.
func Passthrough() Factory {
	return Map(func(p any) (any, error) { return p, nil })
}

// Discard consumes everything and emits nothing.
func Discard() Factory {
	return func() Operator {
		return OperatorFunc(func(any) ([]any, error) { return nil, nil })
	}
}

// TumblingCountWindow groups every n consecutive payloads (per worker)
// into one []any batch (selectivity 1/n). Partial windows are emitted
// only through the runtime draining — state is per worker, so use
// parallelism 1 when global ordering matters.
func TumblingCountWindow(n int) Factory {
	return func() Operator {
		if n < 1 {
			n = 1
		}
		buf := make([]any, 0, n)
		return OperatorFunc(func(p any) ([]any, error) {
			buf = append(buf, p)
			if len(buf) < n {
				return nil, nil
			}
			window := make([]any, len(buf))
			copy(window, buf)
			buf = buf[:0]
			return []any{window}, nil
		})
	}
}

// KeyedCount emits, for every input, the running count of its key (per
// worker). key extracts a comparable key from the payload.
func KeyedCount(key func(any) (string, error)) Factory {
	return func() Operator {
		counts := map[string]int{}
		return OperatorFunc(func(p any) ([]any, error) {
			k, err := key(p)
			if err != nil {
				return nil, err
			}
			counts[k]++
			return []any{KeyCount{Key: k, Count: counts[k]}}, nil
		})
	}
}

// KeyCount is KeyedCount's output record.
type KeyCount struct {
	Key   string
	Count int
}

// Sample deterministically keeps every k-th message per worker
// (selectivity 1/k) — the "sampled" flavour of an alternate that trades
// accuracy for cost.
func Sample(k int) Factory {
	return func() Operator {
		if k < 1 {
			k = 1
		}
		i := 0
		return OperatorFunc(func(p any) ([]any, error) {
			i++
			if i%k == 0 {
				return []any{p}, nil
			}
			return nil, nil
		})
	}
}

// Reduce folds payloads per worker with f, emitting the running
// accumulator after every input. init seeds a fresh accumulator per
// worker.
func Reduce(init func() any, f func(acc, p any) (any, error)) Factory {
	return func() Operator {
		acc := init()
		return OperatorFunc(func(p any) ([]any, error) {
			next, err := f(acc, p)
			if err != nil {
				return nil, err
			}
			acc = next
			return []any{acc}, nil
		})
	}
}

// KeyedSharded partitions stateful processing across a fixed number of
// shards shared by ALL workers of the PE: each message routes to the shard
// owning its key (FNV hash), and a per-shard mutex serializes that shard's
// operator. Keyed state therefore stays consistent at any worker-pool
// width — shards bound the effective parallelism instead.
//
// Ordering note: per-shard execution is serialized, but when the pool has
// more than one worker, two messages with the same key may reach the shard
// in either order; use a single worker when strict per-key arrival order
// matters.
func KeyedSharded(shards int, key func(any) (string, error), newShard func() Operator) Factory {
	if shards < 1 {
		shards = 1
	}
	type shard struct {
		mu sync.Mutex
		op Operator
	}
	ss := make([]*shard, shards)
	for i := range ss {
		ss[i] = &shard{op: newShard()}
	}
	return func() Operator {
		return OperatorFunc(func(p any) ([]any, error) {
			k, err := key(p)
			if err != nil {
				return nil, err
			}
			h := fnv.New32a()
			_, _ = h.Write([]byte(k))
			s := ss[int(h.Sum32())%shards]
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.op.OnMessage(p)
		})
	}
}

// TypeGuard wraps a factory with a payload-type check, turning type
// confusion into operator errors instead of panics.
func TypeGuard[T any](inner Factory) Factory {
	return func() Operator {
		op := inner()
		return OperatorFunc(func(p any) ([]any, error) {
			if _, ok := p.(T); !ok {
				return nil, fmt.Errorf("floe: payload %T is not the expected type", p)
			}
			return op.OnMessage(p)
		})
	}
}
