package floe

import (
	"errors"
	"fmt"
)

// ApplyPlan resizes every PE's worker pool to the planned data-parallel
// width and activates the planned alternates — the hand-off from the
// paper's deployment heuristics (which plan against the simulator's cloud
// model) to real execution: plan with core.PlanAllocation /
// core.SelectAlternates, then execute the same decisions here.
//
// workers[pe] is the pool width (min 1 enforced); alternates[pe] is the
// active alternate index. Either slice may be nil to leave that dimension
// untouched.
func (r *Runtime) ApplyPlan(workers []int, alternates []int) error {
	if !r.started.Load() {
		return errors.New("floe: apply plan before Start")
	}
	if workers != nil && len(workers) != r.g.N() {
		return fmt.Errorf("floe: plan covers %d PEs, graph has %d", len(workers), r.g.N())
	}
	if alternates != nil && len(alternates) != r.g.N() {
		return fmt.Errorf("floe: alternates cover %d PEs, graph has %d", len(alternates), r.g.N())
	}
	if alternates != nil {
		for pe, alt := range alternates {
			if err := r.SwitchAlternate(pe, alt); err != nil {
				return err
			}
		}
	}
	if workers != nil {
		for pe, n := range workers {
			if n < 1 {
				n = 1
			}
			if err := r.SetParallelism(pe, n); err != nil {
				return err
			}
		}
	}
	return nil
}
