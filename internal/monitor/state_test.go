package monitor

import (
	"reflect"
	"testing"
)

func TestRateEstimatorExportImportRoundTrip(t *testing.T) {
	r, err := NewRateEstimator(0.5)
	if err != nil {
		t.Fatal(err)
	}
	r.Observe(2, 10)
	r.Observe(0, 4)
	r.Observe(2, 12)

	entries := r.Export()
	if len(entries) != 2 || entries[0].Key != 0 || entries[1].Key != 2 {
		t.Fatalf("export not key-ordered: %+v", entries)
	}
	r2, _ := NewRateEstimator(0.5)
	r2.Import(entries)
	if !reflect.DeepEqual(r2.Export(), entries) {
		t.Fatalf("round trip changed entries: %+v vs %+v", r2.Export(), entries)
	}
	// The imported estimator continues smoothing identically.
	r.Observe(2, 20)
	r2.Observe(2, 20)
	if a, b := r.Estimate(2, 0), r2.Estimate(2, 0); a != b {
		t.Fatalf("post-import observation diverged: %v vs %v", a, b)
	}
}

func TestVMMonitorExportImportRoundTrip(t *testing.T) {
	m, err := NewVMMonitor(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ObserveCPU(5, Probe{Sec: 60, CPUCoeff: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := m.ObserveCPU(1, Probe{Sec: 120, CPUCoeff: 1.1}); err != nil {
		t.Fatal(err)
	}
	entries := m.Export()
	if len(entries) != 2 || entries[0].VM != 1 || entries[1].VM != 5 {
		t.Fatalf("export not vm-ordered: %+v", entries)
	}
	m2, _ := NewVMMonitor(0.3)
	m2.Import(entries)
	if !reflect.DeepEqual(m2.Export(), entries) {
		t.Fatalf("round trip changed entries: %+v", m2.Export())
	}
}

func TestNetMonitorExportImportRoundTrip(t *testing.T) {
	m, err := NewNetMonitor(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Observe in both orders; pairs are canonicalized.
	if err := m.Observe(3, 1, 0.02, 500); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(1, 2, 0.01, 800); err != nil {
		t.Fatal(err)
	}
	lat, bw := m.Export()
	if len(lat) != 2 || len(bw) != 2 {
		t.Fatalf("export sizes: %d lat, %d bw", len(lat), len(bw))
	}
	if lat[0].A != 1 || lat[0].B != 2 || lat[1].A != 1 || lat[1].B != 3 {
		t.Fatalf("lat export not pair-ordered: %+v", lat)
	}
	m2, _ := NewNetMonitor(0.5)
	m2.Import(lat, bw)
	lat2, bw2 := m2.Export()
	if !reflect.DeepEqual(lat2, lat) || !reflect.DeepEqual(bw2, bw) {
		t.Fatalf("round trip changed entries")
	}
}
