package monitor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMAPrimesOnFirstObservation(t *testing.T) {
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Value(); ok {
		t.Fatal("unprimed estimator claims a value")
	}
	if got := e.ValueOr(7); got != 7 {
		t.Fatalf("ValueOr = %v", got)
	}
	e.Observe(10)
	if v, ok := e.Value(); !ok || v != 10 {
		t.Fatalf("after prime: %v %v", v, ok)
	}
	e.Observe(20)
	if v, _ := e.Value(); v != 15 {
		t.Fatalf("after second: %v", v)
	}
	e.Reset()
	if _, ok := e.Value(); ok {
		t.Fatal("reset did not clear")
	}
}

func TestEWMAIgnoresBrokenProbes(t *testing.T) {
	e, _ := NewEWMA(0.5)
	e.Observe(10)
	e.Observe(math.NaN())
	e.Observe(math.Inf(1))
	if v, _ := e.Value(); v != 10 {
		t.Fatalf("poisoned estimate: %v", v)
	}
}

func TestEWMAAlphaBounds(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.1} {
		if _, err := NewEWMA(a); err == nil {
			t.Fatalf("alpha %v accepted", a)
		}
	}
	if _, err := NewEWMA(1); err != nil {
		t.Fatalf("alpha 1 rejected: %v", err)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e, _ := NewEWMA(0.3)
	for i := 0; i < 100; i++ {
		e.Observe(42)
	}
	if v, _ := e.Value(); math.Abs(v-42) > 1e-9 {
		t.Fatalf("did not converge: %v", v)
	}
}

func TestRateEstimator(t *testing.T) {
	r, err := NewRateEstimator(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Estimate(3, 9); got != 9 {
		t.Fatalf("default = %v", got)
	}
	r.Observe(3, 10)
	r.Observe(3, 20)
	if got := r.Estimate(3, 0); got != 15 {
		t.Fatalf("estimate = %v", got)
	}
	r.Observe(4, 5)
	if r.Keys() != 2 {
		t.Fatalf("keys = %d", r.Keys())
	}
	if _, err := NewRateEstimator(0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
}

func TestVMMonitor(t *testing.T) {
	m, err := NewVMMonitor(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CPUCoeff(1, 1.0); got != 1.0 {
		t.Fatalf("unprobed default = %v", got)
	}
	if err := m.ObserveCPU(1, Probe{Sec: 60, CPUCoeff: 0.8}); err != nil {
		t.Fatal(err)
	}
	if err := m.ObserveCPU(1, Probe{Sec: 120, CPUCoeff: 0.6}); err != nil {
		t.Fatal(err)
	}
	if got := m.CPUCoeff(1, 1.0); got != 0.7 {
		t.Fatalf("coeff = %v", got)
	}
	if sec, ok := m.LastProbe(1); !ok || sec != 120 {
		t.Fatalf("last probe = %v %v", sec, ok)
	}
	if err := m.ObserveCPU(2, Probe{CPUCoeff: 0}); err == nil {
		t.Fatal("zero coefficient accepted")
	}
	if m.Tracked() != 1 {
		t.Fatalf("tracked = %d", m.Tracked())
	}
	m.Forget(1)
	if m.Tracked() != 0 {
		t.Fatal("forget did not remove")
	}
	if _, ok := m.LastProbe(1); ok {
		t.Fatal("last probe survived forget")
	}
	if _, err := NewVMMonitor(2); err == nil {
		t.Fatal("alpha 2 accepted")
	}
}

func TestNetMonitor(t *testing.T) {
	m, err := NewNetMonitor(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Bandwidth(1, 2, 100); got != 100 {
		t.Fatalf("default bw = %v", got)
	}
	if err := m.Observe(1, 2, 0.001, 80); err != nil {
		t.Fatal(err)
	}
	// Symmetric lookup.
	if got := m.Bandwidth(2, 1, 0); got != 80 {
		t.Fatalf("bw(2,1) = %v", got)
	}
	if got := m.Latency(1, 2, 0); got != 0.001 {
		t.Fatalf("lat = %v", got)
	}
	if err := m.Observe(1, 1, 0.001, 80); err == nil {
		t.Fatal("self pair accepted")
	}
	if err := m.Observe(1, 2, -1, 80); err == nil {
		t.Fatal("negative latency accepted")
	}
	if err := m.Observe(1, 2, 0.001, 0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	m.ForgetVM(2)
	if got := m.Bandwidth(1, 2, 33); got != 33 {
		t.Fatal("pair survived ForgetVM")
	}
	if _, err := NewNetMonitor(0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
}

func TestPairKeyCanonical(t *testing.T) {
	if PairKey(5, 2) != PairKey(2, 5) {
		t.Fatal("pair key not canonical")
	}
	if PairKey(2, 5) != [2]int{2, 5} {
		t.Fatal("pair key wrong order")
	}
}

func TestPropertyEWMAStaysInObservedRange(t *testing.T) {
	f := func(alphaRaw uint8, obs []float64) bool {
		alpha := 0.05 + float64(alphaRaw%90)/100.0
		e, err := NewEWMA(alpha)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		any := false
		for _, x := range obs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Estimators track rates and coefficients; bound the domain so
			// the intermediate (x - value) cannot overflow.
			x = math.Mod(x, 1e6)
			any = true
			e.Observe(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if !any {
			_, ok := e.Value()
			return !ok
		}
		v, ok := e.Value()
		return ok && v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
