package monitor

import "sort"

// This file is the estimator state surface used by engine checkpointing
// (internal/state): every EWMA pool can export its full state as plain,
// deterministically ordered records and rebuild itself from them. Export
// orders map entries by key so the serialized form — and therefore any
// digest over it — is stable across runs.

// EWMAState is the complete serializable state of one EWMA estimator.
type EWMAState struct {
	Value  float64 `json:"value"`
	Primed bool    `json:"primed,omitempty"`
}

// State exports the estimator's current state.
func (e *EWMA) State() EWMAState { return EWMAState{Value: e.value, Primed: e.primed} }

// SetState overwrites the estimator's state (the smoothing factor is not
// part of the state; it stays whatever the estimator was built with).
func (e *EWMA) SetState(s EWMAState) { e.value, e.primed = s.Value, s.Primed }

// RateEntry is one key's exported rate-estimator state.
type RateEntry struct {
	Key int       `json:"key"`
	E   EWMAState `json:"e"`
}

// Export returns every tracked key's estimator state, ordered by key.
func (r *RateEstimator) Export() []RateEntry {
	out := make([]RateEntry, 0, len(r.est))
	for k, e := range r.est {
		out = append(out, RateEntry{Key: k, E: e.State()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Import replaces the estimator pool with the exported entries.
func (r *RateEstimator) Import(entries []RateEntry) {
	r.est = make(map[int]*EWMA, len(entries))
	for _, en := range entries {
		e, _ := NewEWMA(r.alpha)
		e.SetState(en.E)
		r.est[en.Key] = e
	}
}

// VMCPUEntry is one VM's exported CPU-monitor state.
type VMCPUEntry struct {
	VM      int       `json:"vm"`
	E       EWMAState `json:"e"`
	LastSec int64     `json:"lastSec"`
}

// Export returns every tracked VM's CPU estimator state, ordered by VM id.
func (m *VMMonitor) Export() []VMCPUEntry {
	out := make([]VMCPUEntry, 0, len(m.cpu))
	for vm, e := range m.cpu {
		out = append(out, VMCPUEntry{VM: vm, E: e.State(), LastSec: m.last[vm]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VM < out[j].VM })
	return out
}

// Import replaces the monitor's state with the exported entries.
func (m *VMMonitor) Import(entries []VMCPUEntry) {
	m.cpu = make(map[int]*EWMA, len(entries))
	m.last = make(map[int]int64, len(entries))
	for _, en := range entries {
		e, _ := NewEWMA(m.alpha)
		e.SetState(en.E)
		m.cpu[en.VM] = e
		m.last[en.VM] = en.LastSec
	}
}

// NetEntry is one VM pair's exported estimator state (A < B).
type NetEntry struct {
	A int       `json:"a"`
	B int       `json:"b"`
	E EWMAState `json:"e"`
}

// Export returns the latency and bandwidth estimator states, each ordered
// by (A, B).
func (m *NetMonitor) Export() (lat, bw []NetEntry) {
	return exportPairs(m.lat), exportPairs(m.bw)
}

// Import replaces the monitor's state with the exported entries.
func (m *NetMonitor) Import(lat, bw []NetEntry) {
	m.lat = importPairs(m.alpha, lat)
	m.bw = importPairs(m.alpha, bw)
}

func exportPairs(src map[[2]int]*EWMA) []NetEntry {
	out := make([]NetEntry, 0, len(src))
	for k, e := range src {
		out = append(out, NetEntry{A: k[0], B: k[1], E: e.State()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func importPairs(alpha float64, entries []NetEntry) map[[2]int]*EWMA {
	dst := make(map[[2]int]*EWMA, len(entries))
	for _, en := range entries {
		e, _ := NewEWMA(alpha)
		e.SetState(en.E)
		dst[PairKey(en.A, en.B)] = e
	}
	return dst
}
