package monitor

import "sort"

// This file is the estimator state surface used by engine checkpointing
// (internal/state): every EWMA pool can export its full state as plain,
// deterministically ordered records and rebuild itself from them. Export
// orders entries by key so the serialized form — and therefore any digest
// over it — is stable across runs, and stays byte-identical to the encoding
// the original map-backed pools produced.

// EWMAState is the complete serializable state of one EWMA estimator.
type EWMAState struct {
	Value  float64 `json:"value"`
	Primed bool    `json:"primed,omitempty"`
}

// State exports the estimator's current state.
func (e *EWMA) State() EWMAState { return EWMAState{Value: e.value, Primed: e.primed} }

// SetState overwrites the estimator's state (the smoothing factor is not
// part of the state; it stays whatever the estimator was built with).
func (e *EWMA) SetState(s EWMAState) { e.value, e.primed = s.Value, s.Primed }

// RateEntry is one key's exported rate-estimator state.
type RateEntry struct {
	Key int       `json:"key"`
	E   EWMAState `json:"e"`
}

// Export returns every tracked key's estimator state, ordered by key.
func (r *RateEstimator) Export() []RateEntry {
	out := make([]RateEntry, 0, r.n)
	for k := range r.est {
		if r.has[k] {
			out = append(out, RateEntry{Key: k, E: r.est[k].State()})
		}
	}
	return out
}

// Import replaces the estimator pool with the exported entries. Entries with
// negative keys are dropped (the pool cannot represent them).
func (r *RateEstimator) Import(entries []RateEntry) {
	r.est = nil
	r.has = nil
	r.n = 0
	for _, en := range entries {
		r.Observe(en.Key, 0)
		if en.Key >= 0 {
			r.est[en.Key].SetState(en.E)
		}
	}
}

// VMCPUEntry is one VM's exported CPU-monitor state.
type VMCPUEntry struct {
	VM      int       `json:"vm"`
	E       EWMAState `json:"e"`
	LastSec int64     `json:"lastSec"`
}

// Export returns every tracked VM's CPU estimator state, ordered by VM id.
func (m *VMMonitor) Export() []VMCPUEntry {
	out := make([]VMCPUEntry, 0, m.n)
	for vm := range m.cpu {
		if m.has[vm] {
			out = append(out, VMCPUEntry{VM: vm, E: m.cpu[vm].State(), LastSec: m.last[vm]})
		}
	}
	return out
}

// Import replaces the monitor's state with the exported entries. Entries
// with negative ids are dropped.
func (m *VMMonitor) Import(entries []VMCPUEntry) {
	m.cpu = nil
	m.last = nil
	m.has = nil
	m.n = 0
	for _, en := range entries {
		if en.VM < 0 {
			continue
		}
		m.grow(en.VM)
		if !m.has[en.VM] {
			m.has[en.VM] = true
			m.n++
		}
		m.cpu[en.VM].SetState(en.E)
		m.last[en.VM] = en.LastSec
	}
}

// NetEntry is one VM pair's exported estimator state (A < B).
type NetEntry struct {
	A int       `json:"a"`
	B int       `json:"b"`
	E EWMAState `json:"e"`
}

// Export returns the latency and bandwidth estimator states, each ordered
// by (A, B).
func (m *NetMonitor) Export() (lat, bw []NetEntry) {
	for t := int32(1); t < int32(len(m.ids)); t++ {
		if m.ids[t] < 0 {
			continue
		}
		for s := int32(0); s < t; s++ {
			if m.ids[s] < 0 {
				continue
			}
			c := &m.cells[cellIndex(s, t)]
			if !c.present {
				continue
			}
			k := PairKey(m.ids[s], m.ids[t])
			lat = append(lat, NetEntry{A: k[0], B: k[1], E: EWMAState{Value: c.lat, Primed: c.latOK}})
			bw = append(bw, NetEntry{A: k[0], B: k[1], E: EWMAState{Value: c.bw, Primed: c.bwOK}})
		}
	}
	sortNetEntries(lat)
	sortNetEntries(bw)
	return lat, bw
}

func sortNetEntries(out []NetEntry) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
}

// Import replaces the monitor's state with the exported entries. The map
// form kept latency and bandwidth pools independent; the dense form stores
// a pair's estimators together, so a pair present in either list gets a
// cell (the missing half stays unprimed, which reads the same as an absent
// map entry did). Entries with invalid ids (negative, or A == B) are
// dropped.
func (m *NetMonitor) Import(lat, bw []NetEntry) {
	m.slot = nil
	m.ids = nil
	m.free = nil
	m.cells = nil
	for _, en := range lat {
		if en.A < 0 || en.B < 0 || en.A == en.B {
			continue
		}
		c := m.cell(m.ensureSlot(en.A), m.ensureSlot(en.B))
		c.present = true
		c.lat, c.latOK = en.E.Value, en.E.Primed
	}
	for _, en := range bw {
		if en.A < 0 || en.B < 0 || en.A == en.B {
			continue
		}
		c := m.cell(m.ensureSlot(en.A), m.ensureSlot(en.B))
		c.present = true
		c.bw, c.bwOK = en.E.Value, en.E.Primed
	}
}
