// Package monitor implements the monitoring framework the paper presumes
// (§4): a component that "periodically and noninvasively probes the
// performance of the cloud VMs and their network connectivity" and measures
// dataflow message rates. In the simulator the probes read the trace
// provider; the estimators here smooth those observations into the values
// the runtime heuristics consume, exactly as a real deployment would smooth
// noisy probe results.
//
// All pools store their estimators in dense slices indexed by the small
// integer ids the simulator hands out (PE indices, VM ids): the per-interval
// probe loop touches every VM pair, so estimator lookup is the hottest read
// in the engine and must not hash.
package monitor

import (
	"errors"
	"fmt"
	"math"
)

// EWMA is an exponentially weighted moving average estimator.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an estimator with smoothing factor alpha in (0, 1]:
// higher alpha weights recent observations more.
func NewEWMA(alpha float64) (*EWMA, error) {
	if !(alpha > 0 && alpha <= 1) {
		return nil, fmt.Errorf("monitor: ewma alpha %v outside (0,1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe folds a new observation into the estimate. The first observation
// primes the estimator directly.
func (e *EWMA) Observe(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return // drop broken probes rather than poison the estimate
	}
	if !e.primed {
		e.value = x
		e.primed = true
		return
	}
	e.value += e.alpha * (x - e.value)
}

// Value returns the current estimate; ok is false before any observation.
func (e *EWMA) Value() (v float64, ok bool) { return e.value, e.primed }

// ValueOr returns the estimate or def when unprimed.
func (e *EWMA) ValueOr(def float64) float64 {
	if !e.primed {
		return def
	}
	return e.value
}

// Reset clears the estimator.
func (e *EWMA) Reset() { e.primed = false; e.value = 0 }

// RateEstimator tracks per-key message rates with EWMA smoothing — the
// "observed input data rates" fed to the runtime heuristics each interval.
// Keys must be small non-negative integers (the engine uses PE indices);
// storage is dense over the largest key seen.
type RateEstimator struct {
	alpha float64
	est   []EWMA
	has   []bool
	n     int
}

// NewRateEstimator returns an estimator pool with the given smoothing.
func NewRateEstimator(alpha float64) (*RateEstimator, error) {
	if !(alpha > 0 && alpha <= 1) {
		return nil, fmt.Errorf("monitor: rate alpha %v outside (0,1]", alpha)
	}
	return &RateEstimator{alpha: alpha}, nil
}

func (r *RateEstimator) grow(key int) {
	for len(r.est) <= key {
		r.est = append(r.est, EWMA{alpha: r.alpha})
		r.has = append(r.has, false)
	}
}

// Observe records a rate observation for key (e.g. a PE index). Negative
// keys are ignored.
func (r *RateEstimator) Observe(key int, rate float64) {
	if key < 0 {
		return
	}
	r.grow(key)
	if !r.has[key] {
		r.has[key] = true
		r.n++
	}
	r.est[key].Observe(rate)
}

// Estimate returns the smoothed rate for key, or def when never observed.
func (r *RateEstimator) Estimate(key int, def float64) float64 {
	if key < 0 || key >= len(r.est) || !r.has[key] {
		return def
	}
	return r.est[key].ValueOr(def)
}

// Keys returns the number of tracked keys.
func (r *RateEstimator) Keys() int { return r.n }

// Probe is one synthetic-benchmark measurement of a VM or VM pair.
type Probe struct {
	// Sec is the probe time.
	Sec int64
	// CPUCoeff is the measured normalized core speed coefficient.
	CPUCoeff float64
}

// VMMonitor smooths per-VM CPU probes, keyed by VM id. Ids must be small
// non-negative integers; storage is dense over the largest id seen.
type VMMonitor struct {
	alpha float64
	cpu   []EWMA
	last  []int64
	has   []bool
	n     int
}

// NewVMMonitor returns a monitor with the given EWMA smoothing factor.
func NewVMMonitor(alpha float64) (*VMMonitor, error) {
	if !(alpha > 0 && alpha <= 1) {
		return nil, fmt.Errorf("monitor: vm alpha %v outside (0,1]", alpha)
	}
	return &VMMonitor{alpha: alpha}, nil
}

func (m *VMMonitor) grow(vmID int) {
	for len(m.cpu) <= vmID {
		m.cpu = append(m.cpu, EWMA{alpha: m.alpha})
		m.last = append(m.last, 0)
		m.has = append(m.has, false)
	}
}

// ObserveCPU records a CPU probe for a VM.
func (m *VMMonitor) ObserveCPU(vmID int, p Probe) error {
	if vmID < 0 {
		return fmt.Errorf("monitor: negative vm id %d", vmID)
	}
	if p.CPUCoeff <= 0 {
		return fmt.Errorf("monitor: vm %d: non-positive CPU coefficient %v", vmID, p.CPUCoeff)
	}
	m.grow(vmID)
	if !m.has[vmID] {
		m.has[vmID] = true
		m.n++
	}
	m.cpu[vmID].Observe(p.CPUCoeff)
	m.last[vmID] = p.Sec
	return nil
}

// CPUCoeff returns the smoothed coefficient for a VM, or def when the VM
// has never been probed (a just-acquired instance is assumed rated: 1).
func (m *VMMonitor) CPUCoeff(vmID int, def float64) float64 {
	if vmID < 0 || vmID >= len(m.cpu) || !m.has[vmID] {
		return def
	}
	return m.cpu[vmID].ValueOr(def)
}

// LastProbe returns the time of the VM's latest probe.
func (m *VMMonitor) LastProbe(vmID int) (int64, bool) {
	if vmID < 0 || vmID >= len(m.cpu) || !m.has[vmID] {
		return 0, false
	}
	return m.last[vmID], true
}

// Forget drops state for a released VM.
func (m *VMMonitor) Forget(vmID int) {
	if vmID < 0 || vmID >= len(m.cpu) || !m.has[vmID] {
		return
	}
	m.has[vmID] = false
	m.cpu[vmID].Reset()
	m.last[vmID] = 0
	m.n--
}

// Tracked returns how many VMs have state.
func (m *VMMonitor) Tracked() int { return m.n }

// PairKey canonicalizes an unordered VM pair into a map key.
func PairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// netCell holds both estimators of one live VM pair, unpacked: the smoothing
// factor lives once on the monitor and the fold is inlined into Observe, so a
// cell is 3 words instead of 2 EWMA structs — the O(V^2) probe loop streams
// through megabytes of cells per interval, and cell size is its bandwidth.
type netCell struct {
	lat, bw     float64
	latOK, bwOK bool // primed
	present     bool
}

// isFinite reports x is neither NaN nor an infinity (x-x is 0 exactly for
// finite x, NaN otherwise).
func isFinite(x float64) bool { return x-x == 0 }

// NetMonitor smooths pairwise latency/bandwidth probes. Internally each
// tracked VM id maps to a compact slot (slots are recycled by ForgetVM), and
// pair state lives in a triangular slice indexed by the slot pair — the
// per-interval O(V^2) probe loop reads and writes cells without hashing.
type NetMonitor struct {
	alpha float64
	slot  []int32 // VM id -> slot, -1 when untracked
	ids   []int   // slot -> VM id, -1 when free
	free  []int32 // recycled slots
	cells []netCell
}

// NewNetMonitor returns a pairwise network monitor.
func NewNetMonitor(alpha float64) (*NetMonitor, error) {
	if !(alpha > 0 && alpha <= 1) {
		return nil, fmt.Errorf("monitor: net alpha %v outside (0,1]", alpha)
	}
	return &NetMonitor{alpha: alpha}, nil
}

// cellIndex maps an ordered slot pair s < t into the triangular cell slice.
// Rows are laid out by the larger slot, so adding a slot only appends cells.
func cellIndex(s, t int32) int { return int(t)*int(t-1)/2 + int(s) }

// slotOf returns the VM's slot or -1.
func (m *NetMonitor) slotOf(vmID int) int32 {
	if vmID < 0 || vmID >= len(m.slot) {
		return -1
	}
	return m.slot[vmID]
}

// ensureSlot returns the VM's slot, assigning one if needed.
func (m *NetMonitor) ensureSlot(vmID int) int32 {
	for len(m.slot) <= vmID {
		m.slot = append(m.slot, -1)
	}
	if s := m.slot[vmID]; s >= 0 {
		return s
	}
	var s int32
	if n := len(m.free); n > 0 {
		s = m.free[n-1]
		m.free = m.free[:n-1]
		m.ids[s] = vmID
	} else {
		s = int32(len(m.ids))
		m.ids = append(m.ids, vmID)
		for len(m.cells) < cellIndex(0, s+1) {
			m.cells = append(m.cells, netCell{})
		}
	}
	m.slot[vmID] = s
	return s
}

// cell returns the cell for two distinct slots.
func (m *NetMonitor) cell(sa, sb int32) *netCell {
	if sa > sb {
		sa, sb = sb, sa
	}
	return &m.cells[cellIndex(sa, sb)]
}

// Observe records one latency (seconds) + bandwidth (Mbps) probe for a pair.
func (m *NetMonitor) Observe(a, b int, latSec, bwMbps float64) error {
	if a == b {
		return errors.New("monitor: net probe on identical VMs")
	}
	if a < 0 || b < 0 {
		return fmt.Errorf("monitor: net probe on negative vm id (%d, %d)", a, b)
	}
	if latSec < 0 || bwMbps <= 0 {
		return fmt.Errorf("monitor: net probe lat=%v bw=%v invalid", latSec, bwMbps)
	}
	c := m.cell(m.ensureSlot(a), m.ensureSlot(b))
	c.present = true
	// The folds are EWMA.Observe inlined (same expression, same drop-broken-
	// probes rule) — this is the hottest write in the engine.
	if isFinite(latSec) {
		if c.latOK {
			c.lat += m.alpha * (latSec - c.lat)
		} else {
			c.lat, c.latOK = latSec, true
		}
	}
	if isFinite(bwMbps) {
		if c.bwOK {
			c.bw += m.alpha * (bwMbps - c.bw)
		} else {
			c.bw, c.bwOK = bwMbps, true
		}
	}
	return nil
}

// Latency returns the smoothed latency for the pair or def.
func (m *NetMonitor) Latency(a, b int, def float64) float64 {
	sa, sb := m.slotOf(a), m.slotOf(b)
	if sa < 0 || sb < 0 || sa == sb {
		return def
	}
	if c := m.cell(sa, sb); c.present && c.latOK {
		return c.lat
	}
	return def
}

// Bandwidth returns the smoothed bandwidth for the pair or def — the paper
// uses rated values at deployment and monitored values at runtime.
func (m *NetMonitor) Bandwidth(a, b int, def float64) float64 {
	sa, sb := m.slotOf(a), m.slotOf(b)
	if sa < 0 || sb < 0 || sa == sb {
		return def
	}
	if c := m.cell(sa, sb); c.present && c.bwOK {
		return c.bw
	}
	return def
}

// ForgetVM drops all pairs touching the VM and recycles its slot.
func (m *NetMonitor) ForgetVM(vmID int) {
	s := m.slotOf(vmID)
	if s < 0 {
		return
	}
	for t := int32(0); t < int32(len(m.ids)); t++ {
		if t == s || m.ids[t] < 0 {
			continue
		}
		*m.cell(s, t) = netCell{}
	}
	m.slot[vmID] = -1
	m.ids[s] = -1
	m.free = append(m.free, s)
}
