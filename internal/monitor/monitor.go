// Package monitor implements the monitoring framework the paper presumes
// (§4): a component that "periodically and noninvasively probes the
// performance of the cloud VMs and their network connectivity" and measures
// dataflow message rates. In the simulator the probes read the trace
// provider; the estimators here smooth those observations into the values
// the runtime heuristics consume, exactly as a real deployment would smooth
// noisy probe results.
package monitor

import (
	"errors"
	"fmt"
	"math"
)

// EWMA is an exponentially weighted moving average estimator.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an estimator with smoothing factor alpha in (0, 1]:
// higher alpha weights recent observations more.
func NewEWMA(alpha float64) (*EWMA, error) {
	if !(alpha > 0 && alpha <= 1) {
		return nil, fmt.Errorf("monitor: ewma alpha %v outside (0,1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe folds a new observation into the estimate. The first observation
// primes the estimator directly.
func (e *EWMA) Observe(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return // drop broken probes rather than poison the estimate
	}
	if !e.primed {
		e.value = x
		e.primed = true
		return
	}
	e.value += e.alpha * (x - e.value)
}

// Value returns the current estimate; ok is false before any observation.
func (e *EWMA) Value() (v float64, ok bool) { return e.value, e.primed }

// ValueOr returns the estimate or def when unprimed.
func (e *EWMA) ValueOr(def float64) float64 {
	if !e.primed {
		return def
	}
	return e.value
}

// Reset clears the estimator.
func (e *EWMA) Reset() { e.primed = false; e.value = 0 }

// RateEstimator tracks per-key message rates with EWMA smoothing — the
// "observed input data rates" fed to the runtime heuristics each interval.
type RateEstimator struct {
	alpha float64
	est   map[int]*EWMA
}

// NewRateEstimator returns an estimator pool with the given smoothing.
func NewRateEstimator(alpha float64) (*RateEstimator, error) {
	if !(alpha > 0 && alpha <= 1) {
		return nil, fmt.Errorf("monitor: rate alpha %v outside (0,1]", alpha)
	}
	return &RateEstimator{alpha: alpha, est: map[int]*EWMA{}}, nil
}

// Observe records a rate observation for key (e.g. a PE index).
func (r *RateEstimator) Observe(key int, rate float64) {
	e, ok := r.est[key]
	if !ok {
		e, _ = NewEWMA(r.alpha)
		r.est[key] = e
	}
	e.Observe(rate)
}

// Estimate returns the smoothed rate for key, or def when never observed.
func (r *RateEstimator) Estimate(key int, def float64) float64 {
	if e, ok := r.est[key]; ok {
		return e.ValueOr(def)
	}
	return def
}

// Keys returns the number of tracked keys.
func (r *RateEstimator) Keys() int { return len(r.est) }

// Probe is one synthetic-benchmark measurement of a VM or VM pair.
type Probe struct {
	// Sec is the probe time.
	Sec int64
	// CPUCoeff is the measured normalized core speed coefficient.
	CPUCoeff float64
}

// VMMonitor smooths per-VM CPU probes, keyed by VM id.
type VMMonitor struct {
	alpha float64
	cpu   map[int]*EWMA
	last  map[int]int64
}

// NewVMMonitor returns a monitor with the given EWMA smoothing factor.
func NewVMMonitor(alpha float64) (*VMMonitor, error) {
	if !(alpha > 0 && alpha <= 1) {
		return nil, fmt.Errorf("monitor: vm alpha %v outside (0,1]", alpha)
	}
	return &VMMonitor{alpha: alpha, cpu: map[int]*EWMA{}, last: map[int]int64{}}, nil
}

// ObserveCPU records a CPU probe for a VM.
func (m *VMMonitor) ObserveCPU(vmID int, p Probe) error {
	if p.CPUCoeff <= 0 {
		return fmt.Errorf("monitor: vm %d: non-positive CPU coefficient %v", vmID, p.CPUCoeff)
	}
	e, ok := m.cpu[vmID]
	if !ok {
		e, _ = NewEWMA(m.alpha)
		m.cpu[vmID] = e
	}
	e.Observe(p.CPUCoeff)
	m.last[vmID] = p.Sec
	return nil
}

// CPUCoeff returns the smoothed coefficient for a VM, or def when the VM
// has never been probed (a just-acquired instance is assumed rated: 1).
func (m *VMMonitor) CPUCoeff(vmID int, def float64) float64 {
	if e, ok := m.cpu[vmID]; ok {
		return e.ValueOr(def)
	}
	return def
}

// LastProbe returns the time of the VM's latest probe.
func (m *VMMonitor) LastProbe(vmID int) (int64, bool) {
	s, ok := m.last[vmID]
	return s, ok
}

// Forget drops state for a released VM.
func (m *VMMonitor) Forget(vmID int) {
	delete(m.cpu, vmID)
	delete(m.last, vmID)
}

// Tracked returns how many VMs have state.
func (m *VMMonitor) Tracked() int { return len(m.cpu) }

// PairKey canonicalizes an unordered VM pair into a map key.
func PairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// NetMonitor smooths pairwise latency/bandwidth probes.
type NetMonitor struct {
	alpha float64
	lat   map[[2]int]*EWMA
	bw    map[[2]int]*EWMA
}

// NewNetMonitor returns a pairwise network monitor.
func NewNetMonitor(alpha float64) (*NetMonitor, error) {
	if !(alpha > 0 && alpha <= 1) {
		return nil, fmt.Errorf("monitor: net alpha %v outside (0,1]", alpha)
	}
	return &NetMonitor{alpha: alpha, lat: map[[2]int]*EWMA{}, bw: map[[2]int]*EWMA{}}, nil
}

// Observe records one latency (seconds) + bandwidth (Mbps) probe for a pair.
func (m *NetMonitor) Observe(a, b int, latSec, bwMbps float64) error {
	if a == b {
		return errors.New("monitor: net probe on identical VMs")
	}
	if latSec < 0 || bwMbps <= 0 {
		return fmt.Errorf("monitor: net probe lat=%v bw=%v invalid", latSec, bwMbps)
	}
	k := PairKey(a, b)
	le, ok := m.lat[k]
	if !ok {
		le, _ = NewEWMA(m.alpha)
		m.lat[k] = le
	}
	le.Observe(latSec)
	be, ok := m.bw[k]
	if !ok {
		be, _ = NewEWMA(m.alpha)
		m.bw[k] = be
	}
	be.Observe(bwMbps)
	return nil
}

// Latency returns the smoothed latency for the pair or def.
func (m *NetMonitor) Latency(a, b int, def float64) float64 {
	if e, ok := m.lat[PairKey(a, b)]; ok {
		return e.ValueOr(def)
	}
	return def
}

// Bandwidth returns the smoothed bandwidth for the pair or def — the paper
// uses rated values at deployment and monitored values at runtime.
func (m *NetMonitor) Bandwidth(a, b int, def float64) float64 {
	if e, ok := m.bw[PairKey(a, b)]; ok {
		return e.ValueOr(def)
	}
	return def
}

// ForgetVM drops all pairs touching the VM.
func (m *NetMonitor) ForgetVM(vmID int) {
	for k := range m.lat {
		if k[0] == vmID || k[1] == vmID {
			delete(m.lat, k)
		}
	}
	for k := range m.bw {
		if k[0] == vmID || k[1] == vmID {
			delete(m.bw, k)
		}
	}
}
