package cloud

import (
	"testing"
)

func TestFleetExportImportRoundTrip(t *testing.T) {
	menu := MustMenu(AWS2013Classes())
	class := func(name string) *Class {
		c, ok := menu.ByName(name)
		if !ok {
			t.Fatalf("no class %q", name)
		}
		return c
	}
	f := NewFleet(menu)
	a, err := f.Acquire(class("m1.small"), 0)
	if err != nil {
		t.Fatal(err)
	}
	a.TraceID = 101
	b, err := f.AcquireDelayed(class("m1.large"), 60, 150)
	if err != nil {
		t.Fatal(err)
	}
	b.TraceID = 102
	if err := f.AssignCores(a.ID, 1, 0); err != nil {
		t.Fatal(err)
	}
	c, err := f.Acquire(class("m1.xlarge"), 120)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Release(c.ID, 600); err != nil {
		t.Fatal(err)
	}

	recs := f.Export()
	g := NewFleet(menu)
	if err := g.Import(recs); err != nil {
		t.Fatal(err)
	}
	recs2 := g.Export()
	if len(recs2) != len(recs) {
		t.Fatalf("round trip changed fleet size: %d -> %d", len(recs), len(recs2))
	}
	for i := range recs {
		if recs[i] != recs2[i] {
			t.Fatalf("record %d changed: %+v -> %+v", i, recs[i], recs2[i])
		}
	}
	// Billing and the id counter continue as on the original.
	if got, want := g.TotalCost(3600), f.TotalCost(3600); got != want {
		t.Fatalf("imported fleet bills $%v, original $%v", got, want)
	}
	d, err := g.Acquire(class("m1.small"), 700)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != c.ID+1 {
		t.Fatalf("id counter did not resume: new VM got id %d, want %d", d.ID, c.ID+1)
	}
}

func TestFleetImportRejectsBadRecords(t *testing.T) {
	menu := MustMenu(AWS2013Classes())
	cases := map[string][]VMRecord{
		"sparse ids":    {{ID: 1, Class: "m1.small", StopSec: -1}},
		"unknown class": {{ID: 0, Class: "z9.mega", StopSec: -1}},
		"cores overflow": {
			{ID: 0, Class: "m1.small", StopSec: -1, UsedCores: 99},
		},
	}
	for name, recs := range cases {
		f := NewFleet(menu)
		if err := f.Import(recs); err == nil {
			t.Errorf("%s: Import accepted bad records", name)
		}
	}
}
