package cloud

import "testing"

func TestAcquireDelayedPendingLifecycle(t *testing.T) {
	m := MustMenu(AWS2013Classes())
	f := NewFleet(m)
	small, _ := m.ByName("m1.small")
	v, err := f.AcquireDelayed(small, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pending() || v.Active() || v.Stopped() {
		t.Fatalf("state after delayed acquire: pending=%v active=%v stopped=%v",
			v.Pending(), v.Active(), v.Stopped())
	}
	if f.ActiveCount() != 0 || f.PendingCount() != 1 {
		t.Fatalf("counts: %d active, %d pending", f.ActiveCount(), f.PendingCount())
	}
	if h := v.BilledHours(400); h != 0 {
		t.Fatalf("pending VM billed %d hours", h)
	}
	if c := f.TotalCost(400); c != 0 {
		t.Fatalf("pending VM cost $%v", c)
	}
	if got := f.MakeReady(499); len(got) != 0 {
		t.Fatalf("MakeReady before ReadySec flipped %d VMs", len(got))
	}
	got := f.MakeReady(500)
	if len(got) != 1 || got[0] != v {
		t.Fatalf("MakeReady at ReadySec = %v", got)
	}
	if !v.Active() || v.Pending() {
		t.Fatal("VM not active after MakeReady")
	}
	// Billing is anchored at ReadySec, not StartSec.
	if h := v.BilledHours(500); h != 1 {
		t.Fatalf("billed %d hours at boot", h)
	}
	if h := v.BilledHours(500 + 3600); h != 1 {
		t.Fatalf("billed %d hours one hour after boot", h)
	}
	if h := v.BilledHours(500 + 3601); h != 2 {
		t.Fatalf("billed %d hours just past the first boundary", h)
	}
	if s := v.SecondsToHourBoundary(500); s != SecondsPerHour {
		t.Fatalf("boundary clock at boot = %d", s)
	}
	if s := v.SecondsToHourBoundary(500 + 3600); s != 0 {
		t.Fatalf("boundary clock one hour after boot = %d", s)
	}
}

func TestCancelWhilePendingNeverBilled(t *testing.T) {
	m := MustMenu(AWS2013Classes())
	f := NewFleet(m)
	small, _ := m.ByName("m1.small")
	v, err := f.AcquireDelayed(small, 0, 900)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Release(v.ID, 100); err != nil {
		t.Fatalf("cancelling a pending VM: %v", err)
	}
	if !v.Stopped() || !v.Pending() {
		t.Fatal("cancelled VM should stay pending forever")
	}
	if h := v.BilledHours(100000); h != 0 {
		t.Fatalf("cancelled-while-pending VM billed %d hours", h)
	}
	if c := f.TotalCost(100000); c != 0 {
		t.Fatalf("cancelled-while-pending VM cost $%v", c)
	}
	if len(f.MakeReady(100000)) != 0 {
		t.Fatal("cancelled VM still became ready")
	}
	if err := f.Release(v.ID, 200); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestAssignCoresOnPendingVM(t *testing.T) {
	m := MustMenu(AWS2013Classes())
	f := NewFleet(m)
	large, _ := m.ByName("m1.large") // 2 cores
	v, err := f.AcquireDelayed(large, 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AssignCores(v.ID, 2, 10); err != nil {
		t.Fatalf("reserving cores on a pending VM: %v", err)
	}
	if err := f.AssignCores(v.ID, 1, 10); err == nil {
		t.Fatal("oversubscription accepted on pending VM")
	}
	// A pending VM with reserved cores cannot be cancelled silently.
	if err := f.Release(v.ID, 20); err == nil {
		t.Fatal("cancel with reserved cores accepted")
	}
	if err := f.UnassignCores(v.ID, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Release(v.ID, 20); err != nil {
		t.Fatal(err)
	}
	if err := f.AssignCores(v.ID, 1, 30); err == nil {
		t.Fatal("assign on released VM accepted")
	}
}

func TestAcquireDelayedValidatesReadySec(t *testing.T) {
	m := MustMenu(AWS2013Classes())
	f := NewFleet(m)
	small, _ := m.ByName("m1.small")
	if _, err := f.AcquireDelayed(small, 100, 99); err == nil {
		t.Fatal("readySec before acquisition accepted")
	}
	v, err := f.AcquireDelayed(small, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pending() {
		t.Fatal("zero-delay acquisition came up pending")
	}
}

func TestMakeReadyReturnsIDOrder(t *testing.T) {
	m := MustMenu(AWS2013Classes())
	f := NewFleet(m)
	small, _ := m.ByName("m1.small")
	b, _ := f.AcquireDelayed(small, 0, 200)
	a, _ := f.AcquireDelayed(small, 0, 100)
	got := f.MakeReady(200)
	if len(got) != 2 || got[0].ID != b.ID || got[1].ID != a.ID {
		t.Fatalf("MakeReady order = %v, want ids [%d %d]", got, b.ID, a.ID)
	}
}
