package cloud

import (
	"math"
	"strings"
	"testing"
)

func TestWithSpotMarket(t *testing.T) {
	classes := WithSpotMarket(AWS2013Classes(), 0.3)
	if len(classes) != 8 {
		t.Fatalf("classes = %d, want 8", len(classes))
	}
	m := MustMenu(classes)
	spot, ok := m.ByName("m1.xlarge-spot")
	if !ok {
		t.Fatal("spot twin missing")
	}
	if !spot.Preemptible {
		t.Fatal("twin not preemptible")
	}
	if math.Abs(spot.PricePerHour-0.48*0.3) > 1e-12 {
		t.Fatalf("spot price = %v", spot.PricePerHour)
	}
	onDemand, _ := m.ByName("m1.xlarge")
	if onDemand.Preemptible {
		t.Fatal("original class mutated")
	}
	if spot.Cores != onDemand.Cores || spot.CoreSpeed != onDemand.CoreSpeed {
		t.Fatal("twin capacity differs")
	}
	// Applying twice does not double the spot classes' twins.
	again := WithSpotMarket(classes, 0.3)
	count := 0
	for _, c := range again {
		if strings.Contains(c.Name, "-spot-spot") {
			count++
		}
	}
	if count != 0 {
		t.Fatal("spot twins were twinned again")
	}
}

func TestOnDemandView(t *testing.T) {
	m := MustMenu(WithSpotMarket(AWS2013Classes(), 0.3))
	od := m.OnDemand()
	if len(od.Classes()) != 4 {
		t.Fatalf("on-demand classes = %d", len(od.Classes()))
	}
	for _, c := range od.Classes() {
		if c.Preemptible {
			t.Fatalf("preemptible %s leaked into on-demand view", c.Name)
		}
	}
	// Largest/SmallestFitting on the view never pick spot.
	if od.Largest().Preemptible {
		t.Fatal("largest is preemptible")
	}
	if c := od.SmallestFitting(1); c == nil || c.Preemptible {
		t.Fatalf("smallest fitting = %v", c)
	}
	// A menu with no on-demand classes returns itself rather than nothing.
	spotOnly := MustMenu([]*Class{{Name: "s", Cores: 1, CoreSpeed: 1, NetMbps: 1, PricePerHour: 0.01, Preemptible: true}})
	if len(spotOnly.OnDemand().Classes()) != 1 {
		t.Fatal("spot-only menu lost its classes")
	}
}

func TestCheapestPreemptibleFitting(t *testing.T) {
	m := MustMenu(WithSpotMarket(AWS2013Classes(), 0.3))
	c := m.CheapestPreemptibleFitting(1.5)
	if c == nil || !c.Preemptible {
		t.Fatalf("got %v", c)
	}
	// Cheapest preemptible with >= 1.5 ECU: medium-spot ($0.036) beats
	// large-spot ($0.072) and xlarge-spot ($0.144).
	if c.Name != "m1.medium-spot" {
		t.Fatalf("got %s", c.Name)
	}
	if m.CheapestPreemptibleFitting(100) != nil {
		t.Fatal("impossible need satisfied")
	}
	plain := MustMenu(AWS2013Classes())
	if plain.CheapestPreemptibleFitting(1) != nil {
		t.Fatal("no spot market but got a class")
	}
}
