package cloud

import "fmt"

// VMRecord is the complete serializable state of one VM, with the class
// referenced by menu name so a snapshot does not embed pricing tables.
// Engine checkpointing (internal/state) stores the fleet as these records.
type VMRecord struct {
	ID        int    `json:"id"`
	Class     string `json:"class"`
	StartSec  int64  `json:"startSec"`
	StopSec   int64  `json:"stopSec"`
	ReadySec  int64  `json:"readySec"`
	UsedCores int    `json:"usedCores,omitempty"`
	TraceID   int64  `json:"traceId,omitempty"`
	Pending   bool   `json:"pending,omitempty"`
}

// Export returns every VM ever acquired as plain records, in id order (the
// fleet's invariant ordering).
func (f *Fleet) Export() []VMRecord {
	out := make([]VMRecord, 0, len(f.vms))
	for _, v := range f.vms {
		out = append(out, VMRecord{
			ID:        v.ID,
			Class:     v.Class.Name,
			StartSec:  v.StartSec,
			StopSec:   v.StopSec,
			ReadySec:  v.ReadySec,
			UsedCores: v.UsedCores,
			TraceID:   v.TraceID,
			Pending:   v.pending,
		})
	}
	return out
}

// Import replaces the fleet's contents with the exported records, resolving
// classes by name on this fleet's menu. Records must be dense and in id
// order (VM i has ID i), matching what Export produces; the id counter
// resumes after the last record.
func (f *Fleet) Import(recs []VMRecord) error {
	vms := make([]*VM, 0, len(recs))
	for i, r := range recs {
		if r.ID != i {
			return fmt.Errorf("cloud: import record %d has id %d (want dense ids)", i, r.ID)
		}
		class, ok := f.menu.ByName(r.Class)
		if !ok {
			return fmt.Errorf("cloud: import VM %d: class %q not on menu", r.ID, r.Class)
		}
		if r.UsedCores < 0 || r.UsedCores > class.Cores {
			return fmt.Errorf("cloud: import VM %d: %d cores used of %d", r.ID, r.UsedCores, class.Cores)
		}
		vms = append(vms, &VM{
			ID:        r.ID,
			Class:     class,
			StartSec:  r.StartSec,
			StopSec:   r.StopSec,
			ReadySec:  r.ReadySec,
			UsedCores: r.UsedCores,
			TraceID:   r.TraceID,
			pending:   r.Pending,
		})
	}
	f.vms = vms
	f.nextID = len(vms)
	return nil
}
