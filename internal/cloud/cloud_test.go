package cloud

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClassValidate(t *testing.T) {
	ok := Class{Name: "c", Cores: 2, CoreSpeed: 2, NetMbps: 100, PricePerHour: 0.24}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Class{
		{Name: "", Cores: 1, CoreSpeed: 1, NetMbps: 1, PricePerHour: 1},
		{Name: "c", Cores: 0, CoreSpeed: 1, NetMbps: 1, PricePerHour: 1},
		{Name: "c", Cores: 1, CoreSpeed: 0, NetMbps: 1, PricePerHour: 1},
		{Name: "c", Cores: 1, CoreSpeed: 1, NetMbps: 0, PricePerHour: 1},
		{Name: "c", Cores: 1, CoreSpeed: 1, NetMbps: 1, PricePerHour: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad class %d accepted", i)
		}
	}
}

func TestAWS2013Menu(t *testing.T) {
	m := MustMenu(AWS2013Classes())
	if len(m.Classes()) != 4 {
		t.Fatalf("menu has %d classes", len(m.Classes()))
	}
	small, ok := m.ByName("m1.small")
	if !ok || small.Capacity() != 1 {
		t.Fatalf("m1.small capacity = %v", small.Capacity())
	}
	xl := m.Largest()
	if xl.Name != "m1.xlarge" || xl.Capacity() != 8 {
		t.Fatalf("largest = %v cap %v", xl.Name, xl.Capacity())
	}
	// 2013 AWS pricing is linear in ECU for m1.*: $0.06/ECU-hour.
	for _, c := range m.Classes() {
		if math.Abs(c.CostPerECUHour()-0.06) > 1e-9 {
			t.Fatalf("%s: $/ECU-h = %v", c.Name, c.CostPerECUHour())
		}
	}
}

func TestMenuSmallestFitting(t *testing.T) {
	m := MustMenu(AWS2013Classes())
	cases := []struct {
		need float64
		want string
	}{
		{0.5, "m1.small"},
		{1.0, "m1.small"},
		{1.5, "m1.medium"},
		{2.0, "m1.medium"},
		{3.0, "m1.large"},
		{4.0, "m1.large"},
		{5.0, "m1.xlarge"},
		{8.0, "m1.xlarge"},
	}
	for _, c := range cases {
		got := m.SmallestFitting(c.need)
		if got == nil || got.Name != c.want {
			t.Fatalf("SmallestFitting(%v) = %v, want %s", c.need, got, c.want)
		}
	}
	if m.SmallestFitting(9) != nil {
		t.Fatal("SmallestFitting(9) should be nil: nothing fits")
	}
}

func TestMenuRejectsDuplicates(t *testing.T) {
	cs := []*Class{
		{Name: "a", Cores: 1, CoreSpeed: 1, NetMbps: 1, PricePerHour: 1},
		{Name: "a", Cores: 2, CoreSpeed: 1, NetMbps: 1, PricePerHour: 1},
	}
	if _, err := NewMenu(cs); err == nil {
		t.Fatal("duplicate class accepted")
	}
	if _, err := NewMenu(nil); err == nil {
		t.Fatal("empty menu accepted")
	}
}

func TestSortedByCapacity(t *testing.T) {
	m := MustMenu(AWS2013Classes())
	s := m.SortedByCapacity()
	for i := 1; i < len(s); i++ {
		if s[i-1].Capacity() < s[i].Capacity() {
			t.Fatalf("not sorted: %v", s)
		}
	}
	if s[0].Name != "m1.xlarge" {
		t.Fatalf("first = %s", s[0].Name)
	}
}

func TestBilledHoursRoundsUp(t *testing.T) {
	c := AWS2013Classes()[0]
	cases := []struct {
		start, stop, now int64
		want             int64
	}{
		{0, -1, 0, 1},        // just started: 1 hour minimum
		{0, -1, 1, 1},        // 1s in: still 1 hour
		{0, -1, 3599, 1},     // just under the boundary
		{0, -1, 3600, 1},     // exactly one hour: 1 hour
		{0, -1, 3601, 2},     // over: 2 hours
		{0, -1, 7200, 2},     // exactly two hours
		{0, 1800, 100000, 1}, // stopped mid-hour: billed 1
		{0, 3601, 100000, 2}, // stopped just past boundary: billed 2
		{100, -1, 3700, 1},   // offset start
		{100, -1, 3701, 2},   // offset start, just over
	}
	for i, tc := range cases {
		v := &VM{ID: 0, Class: c, StartSec: tc.start, StopSec: tc.stop}
		if got := v.BilledHours(tc.now); got != tc.want {
			t.Fatalf("case %d: BilledHours = %d, want %d", i, got, tc.want)
		}
	}
}

func TestAccruedCost(t *testing.T) {
	c := AWS2013Classes()[3] // m1.xlarge $0.48/h
	v := &VM{Class: c, StartSec: 0, StopSec: -1}
	if got := v.AccruedCost(3601); math.Abs(got-0.96) > 1e-9 {
		t.Fatalf("cost = %v, want 0.96", got)
	}
}

func TestSecondsToHourBoundary(t *testing.T) {
	v := &VM{Class: AWS2013Classes()[0], StartSec: 1000, StopSec: -1}
	if got := v.SecondsToHourBoundary(1000); got != SecondsPerHour {
		t.Fatalf("at start: %d", got)
	}
	if got := v.SecondsToHourBoundary(1000 + 3599); got != 1 {
		t.Fatalf("1s before boundary: %d", got)
	}
	if got := v.SecondsToHourBoundary(1000 + 3600); got != 0 {
		t.Fatalf("at boundary: %d", got)
	}
	if got := v.SecondsToHourBoundary(1000 + 3601); got != 3599 {
		t.Fatalf("1s after boundary: %d", got)
	}
}

func TestFleetLifecycle(t *testing.T) {
	m := MustMenu(AWS2013Classes())
	f := NewFleet(m)
	large, _ := m.ByName("m1.large")
	v, err := f.Acquire(large, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.ActiveCount() != 1 {
		t.Fatalf("active = %d", f.ActiveCount())
	}
	if err := f.AssignCores(v.ID, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.AssignCores(v.ID, 1, 0); err == nil {
		t.Fatal("oversubscription accepted")
	}
	if v.FreeCores() != 0 {
		t.Fatalf("free cores = %d", v.FreeCores())
	}
	if err := f.Release(v.ID, 100); err == nil {
		t.Fatal("release with assigned cores accepted")
	}
	if err := f.UnassignCores(v.ID, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Release(v.ID, 100); err != nil {
		t.Fatal(err)
	}
	if err := f.Release(v.ID, 200); err == nil {
		t.Fatal("double release accepted")
	}
	if err := f.AssignCores(v.ID, 1, 300); err == nil {
		t.Fatal("assign on released VM accepted")
	}
	if f.ActiveCount() != 0 {
		t.Fatalf("active = %d after release", f.ActiveCount())
	}
	// Billed a full hour even though released after 100s.
	if got := f.TotalCost(100000); math.Abs(got-0.24) > 1e-9 {
		t.Fatalf("total cost = %v", got)
	}
}

func TestFleetErrors(t *testing.T) {
	m := MustMenu(AWS2013Classes())
	f := NewFleet(m)
	if _, err := f.Acquire(nil, 0); err == nil {
		t.Fatal("nil class accepted")
	}
	offMenu := &Class{Name: "ghost", Cores: 1, CoreSpeed: 1, NetMbps: 1, PricePerHour: 1}
	if _, err := f.Acquire(offMenu, 0); err == nil {
		t.Fatal("off-menu class accepted")
	}
	if _, err := f.Get(42); err == nil {
		t.Fatal("Get(42) on empty fleet accepted")
	}
	if err := f.Release(0, 0); err == nil {
		t.Fatal("release of unknown VM accepted")
	}
	v, _ := f.Acquire(m.Largest(), 50)
	if err := f.Release(v.ID, 10); err == nil {
		t.Fatal("release before start accepted")
	}
	if err := f.AssignCores(v.ID, 0, 0); err == nil {
		t.Fatal("assign 0 cores accepted")
	}
	if err := f.UnassignCores(v.ID, 1); err == nil {
		t.Fatal("unassign with none used accepted")
	}
}

func TestHourlyBurnRate(t *testing.T) {
	m := MustMenu(AWS2013Classes())
	f := NewFleet(m)
	s, _ := m.ByName("m1.small")
	x, _ := m.ByName("m1.xlarge")
	v1, _ := f.Acquire(s, 0)
	_, _ = f.Acquire(x, 0)
	if got := f.HourlyBurnRate(); math.Abs(got-0.54) > 1e-9 {
		t.Fatalf("burn = %v", got)
	}
	_ = f.Release(v1.ID, 10)
	if got := f.HourlyBurnRate(); math.Abs(got-0.48) > 1e-9 {
		t.Fatalf("burn after release = %v", got)
	}
}

func TestActiveByHourBoundary(t *testing.T) {
	m := MustMenu(AWS2013Classes())
	f := NewFleet(m)
	s, _ := m.ByName("m1.small")
	a, _ := f.Acquire(s, 0)    // boundary at 3600
	b, _ := f.Acquire(s, 3000) // boundary at 6600
	order := f.ActiveByHourBoundary(3500)
	if order[0].ID != a.ID || order[1].ID != b.ID {
		t.Fatalf("order = %v, %v", order[0].ID, order[1].ID)
	}
}

func TestPropertyBillingMonotoneAndMinimum(t *testing.T) {
	c := AWS2013Classes()[1]
	f := func(startRaw, d1Raw, d2Raw uint32) bool {
		start := int64(startRaw % 100000)
		d1 := int64(d1Raw % 50000)
		d2 := d1 + int64(d2Raw%50000)
		v := &VM{Class: c, StartSec: start, StopSec: -1}
		h1 := v.BilledHours(start + d1)
		h2 := v.BilledHours(start + d2)
		// Monotone in time, at least one hour, and never more than
		// duration/3600 + 1.
		return h1 >= 1 && h2 >= h1 && h1 <= d1/SecondsPerHour+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCostEqualsHoursTimesPrice(t *testing.T) {
	menu := MustMenu(AWS2013Classes())
	f := func(pick uint8, dur uint32) bool {
		cs := menu.Classes()
		c := cs[int(pick)%len(cs)]
		v := &VM{Class: c, StartSec: 0, StopSec: -1}
		now := int64(dur % 1000000)
		want := float64(v.BilledHours(now)) * c.PricePerHour
		return math.Abs(v.AccruedCost(now)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
