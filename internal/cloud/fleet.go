package cloud

import (
	"errors"
	"fmt"
	"sort"
)

// SecondsPerHour is the billing quantum: VM usage is rounded up to the next
// hour boundary (§4: "usage of a VM instance is rounded up to the nearest
// hourly boundary and the user is charged for the entire hour even if it is
// shut down before the hour ends").
const SecondsPerHour = 3600

// VM is one acquired instance r_i = (C, t_start, t_off). StopSec < 0 marks
// an active instance (the paper's t_off = infinity).
type VM struct {
	ID       int
	Class    *Class
	StartSec int64
	StopSec  int64 // -1 while active

	// UsedCores tracks how many of the VM's cores are currently assigned
	// to PE instances. The fleet enforces UsedCores <= Class.Cores.
	UsedCores int

	// TraceID seeds the performance-trace window assigned to this VM by the
	// simulator; the cloud package only stores it.
	TraceID int64
}

// Active reports whether the VM is still running at time now.
func (v *VM) Active() bool { return v.StopSec < 0 }

// FreeCores returns the number of unassigned cores.
func (v *VM) FreeCores() int { return v.Class.Cores - v.UsedCores }

// BilledHours returns the number of whole hours billed for this VM up to
// time now (at least 1 once started).
func (v *VM) BilledHours(now int64) int64 {
	end := now
	if !v.Active() && v.StopSec < end {
		end = v.StopSec
	}
	if end < v.StartSec {
		end = v.StartSec
	}
	dur := end - v.StartSec
	hours := dur / SecondsPerHour
	if dur%SecondsPerHour != 0 || dur == 0 {
		hours++
	}
	return hours
}

// AccruedCost returns the dollars billed for this VM up to time now.
func (v *VM) AccruedCost(now int64) float64 {
	return float64(v.BilledHours(now)) * v.Class.PricePerHour
}

// SecondsToHourBoundary returns how many seconds remain until the next paid
// hour boundary at time now. Releasing a VM just before its boundary wastes
// the least money; the runtime heuristic releases such VMs first.
func (v *VM) SecondsToHourBoundary(now int64) int64 {
	elapsed := now - v.StartSec
	if elapsed < 0 {
		return SecondsPerHour
	}
	rem := elapsed % SecondsPerHour
	if rem == 0 && elapsed > 0 {
		return 0
	}
	return SecondsPerHour - rem
}

// Fleet is the set R(t) of all VM instances ever acquired, with billing and
// core-allocation bookkeeping.
type Fleet struct {
	menu   *Menu
	vms    []*VM
	nextID int
}

// NewFleet returns an empty fleet drawing from the menu.
func NewFleet(menu *Menu) *Fleet {
	return &Fleet{menu: menu}
}

// Menu returns the class menu this fleet acquires from.
func (f *Fleet) Menu() *Menu { return f.menu }

// Acquire starts a new VM of the class at time now and returns it.
func (f *Fleet) Acquire(class *Class, now int64) (*VM, error) {
	if class == nil {
		return nil, errors.New("cloud: acquire with nil class")
	}
	if _, ok := f.menu.ByName(class.Name); !ok {
		return nil, fmt.Errorf("cloud: class %q not on menu", class.Name)
	}
	v := &VM{ID: f.nextID, Class: class, StartSec: now, StopSec: -1}
	f.nextID++
	f.vms = append(f.vms, v)
	return v, nil
}

// Release stops the VM with the given id at time now. Cores must have been
// unassigned first; releasing a VM with assigned cores is an error so that
// message-buffer migration is never skipped silently.
func (f *Fleet) Release(id int, now int64) error {
	v, err := f.Get(id)
	if err != nil {
		return err
	}
	if !v.Active() {
		return fmt.Errorf("cloud: VM %d already released", id)
	}
	if v.UsedCores > 0 {
		return fmt.Errorf("cloud: VM %d still has %d cores assigned", id, v.UsedCores)
	}
	if now < v.StartSec {
		return fmt.Errorf("cloud: VM %d release at %d precedes start %d", id, now, v.StartSec)
	}
	v.StopSec = now
	return nil
}

// Get returns the VM with the given id.
func (f *Fleet) Get(id int) (*VM, error) {
	if id < 0 || id >= len(f.vms) {
		return nil, fmt.Errorf("cloud: no VM %d", id)
	}
	return f.vms[id], nil
}

// AssignCores reserves n cores of VM id. It fails rather than oversubscribe:
// each PE instance runs on a dedicated core (§5).
func (f *Fleet) AssignCores(id, n int, _ int64) error {
	v, err := f.Get(id)
	if err != nil {
		return err
	}
	if !v.Active() {
		return fmt.Errorf("cloud: VM %d is released", id)
	}
	if n <= 0 {
		return fmt.Errorf("cloud: assign %d cores", n)
	}
	if v.UsedCores+n > v.Class.Cores {
		return fmt.Errorf("cloud: VM %d (%s): %d used + %d requested > %d cores",
			id, v.Class.Name, v.UsedCores, n, v.Class.Cores)
	}
	v.UsedCores += n
	return nil
}

// UnassignCores returns n cores of VM id to the free pool.
func (f *Fleet) UnassignCores(id, n int) error {
	v, err := f.Get(id)
	if err != nil {
		return err
	}
	if n <= 0 || n > v.UsedCores {
		return fmt.Errorf("cloud: VM %d: unassign %d of %d used cores", id, n, v.UsedCores)
	}
	v.UsedCores -= n
	return nil
}

// Active returns the currently running VMs, in id order.
func (f *Fleet) Active() []*VM {
	var out []*VM
	for _, v := range f.vms {
		if v.Active() {
			out = append(out, v)
		}
	}
	return out
}

// All returns every VM ever acquired, in id order. The slice is shared.
func (f *Fleet) All() []*VM { return f.vms }

// ActiveCount returns the number of running VMs.
func (f *Fleet) ActiveCount() int {
	n := 0
	for _, v := range f.vms {
		if v.Active() {
			n++
		}
	}
	return n
}

// TotalCost returns mu(t): dollars billed across all instances, running or
// stopped, up to time now.
func (f *Fleet) TotalCost(now int64) float64 {
	total := 0.0
	for _, v := range f.vms {
		total += v.AccruedCost(now)
	}
	return total
}

// HourlyBurnRate returns the dollars per hour the currently active VMs cost.
func (f *Fleet) HourlyBurnRate() float64 {
	total := 0.0
	for _, v := range f.vms {
		if v.Active() {
			total += v.Class.PricePerHour
		}
	}
	return total
}

// ActiveByHourBoundary returns active VMs sorted by ascending seconds to
// their next paid hour boundary — the preferred release order when scaling
// in.
func (f *Fleet) ActiveByHourBoundary(now int64) []*VM {
	out := f.Active()
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].SecondsToHourBoundary(now) < out[j].SecondsToHourBoundary(now)
	})
	return out
}
