package cloud

import (
	"errors"
	"fmt"
	"sort"
)

// SecondsPerHour is the billing quantum: VM usage is rounded up to the next
// hour boundary (§4: "usage of a VM instance is rounded up to the nearest
// hourly boundary and the user is charged for the entire hour even if it is
// shut down before the hour ends").
const SecondsPerHour = 3600

// VM is one acquired instance r_i = (C, t_start, t_off). StopSec < 0 marks
// an active instance (the paper's t_off = infinity).
type VM struct {
	ID       int
	Class    *Class
	StartSec int64
	StopSec  int64 // -1 while active

	// ReadySec is when the VM finished provisioning and became schedulable
	// (and billable). Equals StartSec unless acquired with a boot delay.
	ReadySec int64

	// UsedCores tracks how many of the VM's cores are currently assigned
	// to PE instances. The fleet enforces UsedCores <= Class.Cores.
	UsedCores int

	// TraceID seeds the performance-trace window assigned to this VM by the
	// simulator; the cloud package only stores it.
	TraceID int64

	// pending marks a VM still provisioning: acquired, but not yet
	// schedulable or billable. A VM released (or crashed) while pending
	// stays pending forever and is never billed — real clouds do not charge
	// for capacity that never booted.
	pending bool
}

// Active reports whether the VM is running and has finished provisioning.
func (v *VM) Active() bool { return v.StopSec < 0 && !v.pending }

// Pending reports whether the VM is still provisioning (or was cancelled
// before it ever finished provisioning).
func (v *VM) Pending() bool { return v.pending }

// Stopped reports whether the VM has been released, cancelled, or crashed.
func (v *VM) Stopped() bool { return v.StopSec >= 0 }

// FreeCores returns the number of unassigned cores.
func (v *VM) FreeCores() int { return v.Class.Cores - v.UsedCores }

// billingStartSec is the instant billing is anchored at: ReadySec for a VM
// acquired with a boot delay, StartSec otherwise (including VM literals that
// never set ReadySec).
func (v *VM) billingStartSec() int64 {
	if v.ReadySec > v.StartSec {
		return v.ReadySec
	}
	return v.StartSec
}

// BilledHours returns the number of whole hours billed for this VM up to
// time now (at least 1 once booted). Billing starts when provisioning
// completes: a VM still provisioning — or cancelled before it ever became
// ready — costs nothing.
func (v *VM) BilledHours(now int64) int64 {
	if v.pending {
		return 0
	}
	anchor := v.billingStartSec()
	end := now
	if v.Stopped() && v.StopSec < end {
		end = v.StopSec
	}
	if end < anchor {
		end = anchor
	}
	dur := end - anchor
	hours := dur / SecondsPerHour
	if dur%SecondsPerHour != 0 || dur == 0 {
		hours++
	}
	return hours
}

// AccruedCost returns the dollars billed for this VM up to time now.
func (v *VM) AccruedCost(now int64) float64 {
	return float64(v.BilledHours(now)) * v.Class.PricePerHour
}

// SecondsToHourBoundary returns how many seconds remain until the next paid
// hour boundary at time now. Releasing a VM just before its boundary wastes
// the least money; the runtime heuristic releases such VMs first. Billing —
// and hence the boundary clock — is anchored at the end of provisioning.
func (v *VM) SecondsToHourBoundary(now int64) int64 {
	elapsed := now - v.billingStartSec()
	if elapsed < 0 {
		return SecondsPerHour
	}
	rem := elapsed % SecondsPerHour
	if rem == 0 && elapsed > 0 {
		return 0
	}
	return SecondsPerHour - rem
}

// Fleet is the set R(t) of all VM instances ever acquired, with billing and
// core-allocation bookkeeping.
type Fleet struct {
	menu   *Menu
	vms    []*VM
	nextID int
}

// NewFleet returns an empty fleet drawing from the menu.
func NewFleet(menu *Menu) *Fleet {
	return &Fleet{menu: menu}
}

// Menu returns the class menu this fleet acquires from.
func (f *Fleet) Menu() *Menu { return f.menu }

// Acquire starts a new VM of the class at time now and returns it. The VM
// is ready — schedulable and billable — immediately.
func (f *Fleet) Acquire(class *Class, now int64) (*VM, error) {
	return f.AcquireDelayed(class, now, now)
}

// AcquireDelayed starts a new VM whose provisioning completes at readySec.
// Until then the VM is pending: cores may be reserved on it, but it is not
// schedulable and not billed. Call MakeReady each simulated step to flip
// pending VMs whose boot time has arrived.
func (f *Fleet) AcquireDelayed(class *Class, now, readySec int64) (*VM, error) {
	if class == nil {
		return nil, errors.New("cloud: acquire with nil class")
	}
	if _, ok := f.menu.ByName(class.Name); !ok {
		return nil, fmt.Errorf("cloud: class %q not on menu", class.Name)
	}
	if readySec < now {
		return nil, fmt.Errorf("cloud: VM ready time %d precedes acquisition %d", readySec, now)
	}
	v := &VM{ID: f.nextID, Class: class, StartSec: now, ReadySec: readySec, StopSec: -1,
		pending: readySec > now}
	f.nextID++
	f.vms = append(f.vms, v)
	return v, nil
}

// MakeReady completes provisioning for every pending VM whose ReadySec has
// arrived and returns them in id order. Billing for each starts at its
// ReadySec.
func (f *Fleet) MakeReady(now int64) []*VM {
	var out []*VM
	for _, v := range f.vms {
		if v.pending && v.StopSec < 0 && v.ReadySec <= now {
			v.pending = false
			out = append(out, v)
		}
	}
	return out
}

// Release stops the VM with the given id at time now. Cores must have been
// unassigned first; releasing a VM with assigned cores is an error so that
// message-buffer migration is never skipped silently. Releasing a pending
// VM cancels the provisioning request at no charge.
func (f *Fleet) Release(id int, now int64) error {
	v, err := f.Get(id)
	if err != nil {
		return err
	}
	if v.Stopped() {
		return fmt.Errorf("cloud: VM %d already released", id)
	}
	if v.UsedCores > 0 {
		return fmt.Errorf("cloud: VM %d still has %d cores assigned", id, v.UsedCores)
	}
	if now < v.StartSec {
		return fmt.Errorf("cloud: VM %d release at %d precedes start %d", id, now, v.StartSec)
	}
	v.StopSec = now
	return nil
}

// Get returns the VM with the given id.
func (f *Fleet) Get(id int) (*VM, error) {
	if id < 0 || id >= len(f.vms) {
		return nil, fmt.Errorf("cloud: no VM %d", id)
	}
	return f.vms[id], nil
}

// AssignCores reserves n cores of VM id. It fails rather than oversubscribe:
// each PE instance runs on a dedicated core (§5). Cores may be reserved on a
// pending VM — they start processing when provisioning completes.
func (f *Fleet) AssignCores(id, n int, _ int64) error {
	v, err := f.Get(id)
	if err != nil {
		return err
	}
	if v.Stopped() {
		return fmt.Errorf("cloud: VM %d is released", id)
	}
	if n <= 0 {
		return fmt.Errorf("cloud: assign %d cores", n)
	}
	if v.UsedCores+n > v.Class.Cores {
		return fmt.Errorf("cloud: VM %d (%s): %d used + %d requested > %d cores",
			id, v.Class.Name, v.UsedCores, n, v.Class.Cores)
	}
	v.UsedCores += n
	return nil
}

// UnassignCores returns n cores of VM id to the free pool.
func (f *Fleet) UnassignCores(id, n int) error {
	v, err := f.Get(id)
	if err != nil {
		return err
	}
	if n <= 0 || n > v.UsedCores {
		return fmt.Errorf("cloud: VM %d: unassign %d of %d used cores", id, n, v.UsedCores)
	}
	v.UsedCores -= n
	return nil
}

// Active returns the currently running VMs, in id order.
func (f *Fleet) Active() []*VM {
	var out []*VM
	for _, v := range f.vms {
		if v.Active() {
			out = append(out, v)
		}
	}
	return out
}

// ActiveInto appends the currently running VMs to buf, in id order, and
// returns it — Active for callers reusing a buffer across calls.
func (f *Fleet) ActiveInto(buf []*VM) []*VM {
	for _, v := range f.vms {
		if v.Active() {
			buf = append(buf, v)
		}
	}
	return buf
}

// All returns every VM ever acquired, in id order. The slice is shared.
func (f *Fleet) All() []*VM { return f.vms }

// ActiveCount returns the number of running VMs.
func (f *Fleet) ActiveCount() int {
	n := 0
	for _, v := range f.vms {
		if v.Active() {
			n++
		}
	}
	return n
}

// Pending returns the VMs still provisioning, in id order.
func (f *Fleet) Pending() []*VM {
	var out []*VM
	for _, v := range f.vms {
		if v.pending && v.StopSec < 0 {
			out = append(out, v)
		}
	}
	return out
}

// PendingCount returns the number of VMs still provisioning.
func (f *Fleet) PendingCount() int {
	n := 0
	for _, v := range f.vms {
		if v.pending && v.StopSec < 0 {
			n++
		}
	}
	return n
}

// TotalCost returns mu(t): dollars billed across all instances, running or
// stopped, up to time now.
func (f *Fleet) TotalCost(now int64) float64 {
	total := 0.0
	for _, v := range f.vms {
		total += v.AccruedCost(now)
	}
	return total
}

// HourlyBurnRate returns the dollars per hour the currently active VMs cost.
func (f *Fleet) HourlyBurnRate() float64 {
	total := 0.0
	for _, v := range f.vms {
		if v.Active() {
			total += v.Class.PricePerHour
		}
	}
	return total
}

// ActiveByHourBoundary returns active VMs sorted by ascending seconds to
// their next paid hour boundary — the preferred release order when scaling
// in.
func (f *Fleet) ActiveByHourBoundary(now int64) []*VM {
	out := f.Active()
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].SecondsToHourBoundary(now) < out[j].SecondsToHourBoundary(now)
	})
	return out
}
