// Package cloud models a virtualized IaaS environment as seen by a
// continuous-dataflow execution framework (paper §4): a menu of VM resource
// classes with rated core speeds, network bandwidth and hourly prices; VM
// instances with lifetimes billed at hour boundaries; and a per-VM core
// allocation ledger. The framework has no control over, or knowledge of,
// placement inside the data center — runtime performance arrives from the
// trace/monitoring layer, not from this package.
package cloud

import (
	"errors"
	"fmt"
	"sort"
)

// Class describes a VM resource class C_i: the number of dedicated CPU
// cores N, the rated per-core normalized speed pi (relative to a "standard"
// core with pi = 1), the rated network bandwidth beta, and the fixed hourly
// usage price xi.
type Class struct {
	Name string
	// Cores is the number of dedicated CPU cores per VM of this class.
	Cores int
	// CoreSpeed is the rated normalized processing power pi per core: how
	// many standard-core-seconds of work one core completes per second
	// under ideal conditions.
	CoreSpeed float64
	// NetMbps is the rated network bandwidth in megabits per second.
	NetMbps float64
	// PricePerHour is the on-demand price xi in dollars per hour.
	PricePerHour float64
	// Preemptible marks spot-market capacity: cheaper, but the provider
	// may reclaim the VM at any time (an extension beyond the paper's
	// on-demand-only §4 model; see sim.Config.Preemption).
	Preemptible bool
}

// Capacity returns the class's total rated processing power in
// standard-core-seconds per second (Cores x CoreSpeed); AWS calls the unit
// ECU.
func (c *Class) Capacity() float64 { return float64(c.Cores) * c.CoreSpeed }

// CostPerECUHour returns the price of one unit of rated capacity for one
// hour — the figure of merit the repacking heuristics compare classes by.
func (c *Class) CostPerECUHour() float64 { return c.PricePerHour / c.Capacity() }

// Validate reports whether the class parameters are legal.
func (c *Class) Validate() error {
	if c.Name == "" {
		return errors.New("cloud: class has empty name")
	}
	if c.Cores < 1 {
		return fmt.Errorf("cloud: class %q: cores %d < 1", c.Name, c.Cores)
	}
	if c.CoreSpeed <= 0 {
		return fmt.Errorf("cloud: class %q: core speed %v <= 0", c.Name, c.CoreSpeed)
	}
	if c.NetMbps <= 0 {
		return fmt.Errorf("cloud: class %q: bandwidth %v <= 0", c.Name, c.NetMbps)
	}
	if c.PricePerHour <= 0 {
		return fmt.Errorf("cloud: class %q: price %v <= 0", c.Name, c.PricePerHour)
	}
	return nil
}

// AWS2013Classes returns the first-generation AWS on-demand instance menu
// the paper's evaluation mirrors (§8.1: "same virtual machine instance types
// as provided by the AWS cloud provider with similar performance ratings and
// on-demand pricing per hour"). Speeds are ECUs per core with the m1.small
// core defined as the standard core (1 ECU).
func AWS2013Classes() []*Class {
	return []*Class{
		{Name: "m1.small", Cores: 1, CoreSpeed: 1.0, NetMbps: 100, PricePerHour: 0.06},
		{Name: "m1.medium", Cores: 1, CoreSpeed: 2.0, NetMbps: 100, PricePerHour: 0.12},
		{Name: "m1.large", Cores: 2, CoreSpeed: 2.0, NetMbps: 100, PricePerHour: 0.24},
		{Name: "m1.xlarge", Cores: 4, CoreSpeed: 2.0, NetMbps: 100, PricePerHour: 0.48},
	}
}

// WithSpotMarket returns the menu's classes plus a preemptible twin of
// each at the given price fraction (AWS spot instances historically traded
// around 0.2-0.4x on-demand). Twin names get a "-spot" suffix.
func WithSpotMarket(classes []*Class, priceFraction float64) []*Class {
	out := append([]*Class(nil), classes...)
	for _, c := range classes {
		if c.Preemptible {
			continue
		}
		spot := *c
		spot.Name = c.Name + "-spot"
		spot.PricePerHour = c.PricePerHour * priceFraction
		spot.Preemptible = true
		out = append(out, &spot)
	}
	return out
}

// Menu is an ordered set of VM classes available for acquisition.
type Menu struct {
	classes []*Class
	byName  map[string]*Class
}

// NewMenu validates the classes and returns a menu. The input order is
// preserved for iteration but helpers expose capacity-sorted views.
func NewMenu(classes []*Class) (*Menu, error) {
	if len(classes) == 0 {
		return nil, errors.New("cloud: menu needs at least one class")
	}
	m := &Menu{byName: make(map[string]*Class, len(classes))}
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if _, dup := m.byName[c.Name]; dup {
			return nil, fmt.Errorf("cloud: duplicate class %q", c.Name)
		}
		m.byName[c.Name] = c
		m.classes = append(m.classes, c)
	}
	return m, nil
}

// MustMenu is NewMenu that panics on error, for tests and examples.
func MustMenu(classes []*Class) *Menu {
	m, err := NewMenu(classes)
	if err != nil {
		panic(err)
	}
	return m
}

// Classes returns the menu's classes in their original order. The slice is
// shared; callers must not mutate it.
func (m *Menu) Classes() []*Class { return m.classes }

// ByName looks a class up by name.
func (m *Menu) ByName(name string) (*Class, bool) {
	c, ok := m.byName[name]
	return c, ok
}

// Largest returns the class with the greatest total capacity, breaking ties
// by lower price. Alg. 1's generic VBP step opens bins of the largest class.
func (m *Menu) Largest() *Class {
	best := m.classes[0]
	for _, c := range m.classes[1:] {
		if c.Capacity() > best.Capacity() ||
			(c.Capacity() == best.Capacity() && c.PricePerHour < best.PricePerHour) {
			best = c
		}
	}
	return best
}

// SmallestFitting returns the cheapest class whose total capacity is at
// least need (standard-core-sec/s), or nil when none fits in one VM. The
// global strategy's RepackPE uses it for best-fit downgrade.
func (m *Menu) SmallestFitting(need float64) *Class {
	var best *Class
	for _, c := range m.classes {
		if c.Capacity() < need {
			continue
		}
		if best == nil || c.PricePerHour < best.PricePerHour ||
			(c.PricePerHour == best.PricePerHour && c.Capacity() < best.Capacity()) {
			best = c
		}
	}
	return best
}

// OnDemand returns a menu restricted to non-preemptible classes. Policies
// that cannot tolerate preemption plan against this view.
func (m *Menu) OnDemand() *Menu {
	var keep []*Class
	for _, c := range m.classes {
		if !c.Preemptible {
			keep = append(keep, c)
		}
	}
	if len(keep) == 0 {
		return m
	}
	sub, err := NewMenu(keep)
	if err != nil {
		return m // unreachable: classes already validated
	}
	return sub
}

// CheapestPreemptibleFitting returns the cheapest preemptible class whose
// capacity covers need, or nil when the menu has no spot market.
func (m *Menu) CheapestPreemptibleFitting(need float64) *Class {
	var best *Class
	for _, c := range m.classes {
		if !c.Preemptible || c.Capacity() < need {
			continue
		}
		if best == nil || c.PricePerHour < best.PricePerHour {
			best = c
		}
	}
	return best
}

// SortedByCapacity returns the classes sorted by decreasing capacity
// (ties: cheaper first). The returned slice is fresh.
func (m *Menu) SortedByCapacity() []*Class {
	out := append([]*Class(nil), m.classes...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Capacity() != out[j].Capacity() {
			return out[i].Capacity() > out[j].Capacity()
		}
		return out[i].PricePerHour < out[j].PricePerHour
	})
	return out
}
