package dataflow

import "fmt"

// Selection maps each PE index to the index of its active alternate. During
// any interval exactly one alternate per PE is active (Eq. for A_i^j in §3).
type Selection []int

// DefaultSelection returns the selection that activates alternate 0 of every
// PE.
func DefaultSelection(g *Graph) Selection {
	return make(Selection, g.N())
}

// Validate checks the selection indexes a real alternate of every PE.
func (s Selection) Validate(g *Graph) error {
	if len(s) != g.N() {
		return fmt.Errorf("dataflow: selection covers %d PEs, graph has %d", len(s), g.N())
	}
	for i, j := range s {
		if j < 0 || j >= len(g.PEs[i].Alternates) {
			return fmt.Errorf("dataflow: selection for PE %q: alternate %d out of range", g.PEs[i].Name, j)
		}
	}
	return nil
}

// Clone returns an independent copy of the selection.
func (s Selection) Clone() Selection {
	return append(Selection(nil), s...)
}

// Alt returns the active alternate of PE i under the selection.
func (s Selection) Alt(g *Graph, i int) Alternate {
	return g.PEs[i].Alternates[s[i]]
}

// Value computes the normalized application value Gamma (Def. 3): the mean
// of the active alternates' values across all PEs, in (0, 1].
func (s Selection) Value(g *Graph) float64 {
	sum := 0.0
	for i := range g.PEs {
		sum += s.Alt(g, i).Value
	}
	return sum / float64(g.N())
}

// InputRates gives the external message rate (msg/s) at each input PE,
// keyed by PE index. Non-input PEs must not appear.
type InputRates map[int]float64

// PropagateRates computes, for every PE, the steady-state input and output
// message rates implied by the external input rates and the active
// alternates, assuming unbounded processing capacity. This is the "expected"
// rate used both by the heuristics for resource estimation and by Def. 4 as
// the denominator of relative throughput.
//
// Edge semantics follow §3: a PE's output rate is duplicated onto each
// outgoing edge (and-split) and a PE's input rate is the sum over incoming
// edges (multi-merge).
func PropagateRates(g *Graph, sel Selection, in InputRates) (inRate, outRate []float64, err error) {
	if err := sel.Validate(g); err != nil {
		return nil, nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	inRate = make([]float64, g.N())
	outRate = make([]float64, g.N())
	for pe, r := range in {
		if pe < 0 || pe >= g.N() {
			return nil, nil, fmt.Errorf("dataflow: input rate for out-of-range PE %d", pe)
		}
		if len(g.Predecessors(pe)) != 0 {
			return nil, nil, fmt.Errorf("dataflow: input rate set on non-input PE %q", g.PEs[pe].Name)
		}
		if r < 0 {
			return nil, nil, fmt.Errorf("dataflow: negative input rate %v on PE %q", r, g.PEs[pe].Name)
		}
		inRate[pe] = r
	}
	for _, v := range order {
		outRate[v] = inRate[v] * sel.Alt(g, v).Selectivity
		for _, w := range g.Successors(v) {
			inRate[w] += outRate[v]
		}
	}
	return inRate, outRate, nil
}

// CoreDemand computes, per PE, the standard-core-seconds per second needed to
// sustain the expected input rates under the selection: demand_i = lambda_i *
// c_i. A PE allocated cores whose normalized speeds sum to at least demand_i
// can keep up with its arrivals.
func CoreDemand(g *Graph, sel Selection, in InputRates) ([]float64, error) {
	inRate, _, err := PropagateRates(g, sel, in)
	if err != nil {
		return nil, err
	}
	demand := make([]float64, g.N())
	for i := range demand {
		demand[i] = inRate[i] * sel.Alt(g, i).Cost
	}
	return demand, nil
}

// DownstreamCosts computes, for every PE and every alternate, the global
// strategy's cost (Table 1, GetCostOfAlternate): the alternate's own
// processing cost plus the selectivity-weighted cost of all downstream work
// a message entering this alternate eventually induces. It is evaluated by
// dynamic programming over the graph in reverse topological order (the paper
// describes reverse BFS rooted at the outputs; topological order gives the
// same dependencies deterministically).
//
// base[i] must hold the per-PE downstream continuation: the cost of PE i's
// successors measured with their currently selected alternates. The returned
// matrix is indexed [pe][alternate].
func DownstreamCosts(g *Graph, sel Selection) ([][]float64, error) {
	if err := sel.Validate(g); err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	// nodeCost[i]: cost per message entering PE i, using its selected
	// alternate, including everything downstream of it.
	nodeCost := make([]float64, g.N())
	for k := len(order) - 1; k >= 0; k-- {
		v := order[k]
		a := sel.Alt(g, v)
		down := 0.0
		for _, w := range g.Successors(v) {
			down += nodeCost[w]
		}
		nodeCost[v] = a.Cost + a.Selectivity*down
	}
	costs := make([][]float64, g.N())
	for i, p := range g.PEs {
		costs[i] = make([]float64, len(p.Alternates))
		down := 0.0
		for _, w := range g.Successors(i) {
			down += nodeCost[w]
		}
		for j, a := range p.Alternates {
			costs[i][j] = a.Cost + a.Selectivity*down
		}
	}
	return costs, nil
}

// MaxValue returns the normalized application value when every PE runs its
// best-value alternate (used to derive sigma, §6).
func MaxValue(g *Graph) float64 {
	sum := 0.0
	for _, p := range g.PEs {
		sum += p.BestValue()
	}
	return sum / float64(g.N())
}

// MinValue returns the normalized application value when every PE runs its
// worst-value alternate.
func MinValue(g *Graph) float64 {
	sum := 0.0
	for _, p := range g.PEs {
		sum += p.WorstValue()
	}
	return sum / float64(g.N())
}
