package dataflow

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	for _, orig := range []*Graph{Fig1Graph(), EvalGraph(), DiamondGraph(), choiceGraph()} {
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatal(err)
		}
		var got Graph
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: %v", orig, err)
		}
		if got.N() != orig.N() || len(got.Edges) != len(orig.Edges) || len(got.Choices) != len(orig.Choices) {
			t.Fatalf("shape changed: %s -> %s", orig, &got)
		}
		for i, p := range orig.PEs {
			q := got.PEs[i]
			if p.Name != q.Name || len(p.Alternates) != len(q.Alternates) {
				t.Fatalf("PE %d changed: %+v vs %+v", i, p, q)
			}
			for j := range p.Alternates {
				if p.Alternates[j] != q.Alternates[j] {
					t.Fatalf("alternate %d/%d changed", i, j)
				}
			}
		}
		// Propagation behaves identically.
		sel := DefaultSelection(orig)
		in := InputRates{}
		for _, pe := range orig.Inputs() {
			in[pe] = 7
		}
		_, outA, err := PropagateRates(orig, sel, in)
		if err != nil {
			t.Fatal(err)
		}
		_, outB, err := PropagateRates(&got, sel, in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range outA {
			if outA[i] != outB[i] {
				t.Fatalf("propagation changed at PE %d", i)
			}
		}
	}
}

func TestGraphWriteReadJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1Graph().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"name\": \"E1\"") {
		t.Fatalf("not indented canonical form:\n%s", buf.String())
	}
	g, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 {
		t.Fatalf("N = %d", g.N())
	}
}

func TestGraphJSONRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"garbage":    `{"pes": "nope"}`,
		"no pes":     `{"pes": [], "edges": []}`,
		"bad edge":   `{"pes": [{"name":"a","alternates":[{"name":"x","value":1,"cost":1,"selectivity":1}]}], "edges": [["a","ghost"]]}`,
		"cycle":      `{"pes": [{"name":"a","alternates":[{"name":"x","value":1,"cost":1,"selectivity":1}]},{"name":"b","alternates":[{"name":"x","value":1,"cost":1,"selectivity":1}]}], "edges": [["a","b"],["b","a"]]}`,
		"bad values": `{"pes": [{"name":"a","alternates":[{"name":"x","value":2,"cost":1,"selectivity":1}]}], "edges": []}`,
	}
	for name, in := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(in), &g); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}
