package dataflow

import (
	"math"
	"testing"
)

func TestPropagateCappedThrottles(t *testing.T) {
	g := Fig1Graph()
	sel := DefaultSelection(g)
	in := InputRates{0: 10}
	// E2 capped to 4 msg/s, everyone else unconstrained.
	caps := []float64{100, 4, 100, 100}
	inR, outR, err := PropagateCapped(g, sel, in, caps)
	if err != nil {
		t.Fatal(err)
	}
	if outR[1] != 4 {
		t.Fatalf("E2 out = %v, want 4", outR[1])
	}
	// E3 unconstrained: 10 * 0.8 = 8; E4 arrival = 4 + 8.
	if outR[2] != 8 || inR[3] != 12 {
		t.Fatalf("E3 out = %v, E4 in = %v", outR[2], inR[3])
	}
}

func TestPredictOmegaMatchesBottleneckRatio(t *testing.T) {
	g := Fig1Graph()
	sel := DefaultSelection(g)
	in := InputRates{0: 10}
	// Uncapped expectation at E4: 18 msg/s. Cap E2 at half its arrival:
	// observed at E4 = 5 + 8 = 13 -> omega 13/18.
	caps := []float64{100, 5, 100, 100}
	om, err := PredictOmega(g, sel, in, caps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(om-13.0/18.0) > 1e-12 {
		t.Fatalf("omega = %v, want %v", om, 13.0/18.0)
	}
	// Ample capacity: omega = 1.
	om, err = PredictOmega(g, sel, in, []float64{100, 100, 100, 100})
	if err != nil || om != 1 {
		t.Fatalf("ample omega = %v err %v", om, err)
	}
	// Zero input: omega defined as 1.
	om, err = PredictOmega(g, sel, InputRates{0: 0}, caps)
	if err != nil || om != 1 {
		t.Fatalf("zero-input omega = %v err %v", om, err)
	}
}

func TestPEThroughputsRankBottleneck(t *testing.T) {
	g := Fig1Graph()
	sel := DefaultSelection(g)
	in := InputRates{0: 10}
	caps := []float64{100, 2, 100, 100}
	th, err := PEThroughputs(g, sel, in, caps)
	if err != nil {
		t.Fatal(err)
	}
	if th[1] != 0.2 {
		t.Fatalf("E2 throughput = %v, want 0.2", th[1])
	}
	if th[0] != 1 || th[2] != 1 {
		t.Fatalf("unthrottled PEs = %v / %v", th[0], th[2])
	}
	// E4's arrival is already reduced; it processes all of it -> 1.
	if th[3] != 1 {
		t.Fatalf("E4 throughput = %v", th[3])
	}
	// The bottleneck is the minimum.
	min := 1.0
	for _, v := range th {
		if v < min {
			min = v
		}
	}
	if min != th[1] {
		t.Fatal("bottleneck ranking wrong")
	}
}

func TestRoutedCappedVariants(t *testing.T) {
	g := choiceGraph()
	sel := DefaultSelection(g)
	in := InputRates{0: 10}
	caps := make([]float64, g.N())
	for i := range caps {
		caps[i] = 100
	}
	th, err := PEThroughputsRouted(g, sel, Routing{1}, in, caps)
	if err != nil {
		t.Fatal(err)
	}
	// Inactive deep path has no arrivals -> throughput 1 by definition.
	if th[1] != 1 || th[2] != 1 {
		t.Fatalf("inactive path throughputs = %v / %v", th[1], th[2])
	}
	costs, err := DownstreamCostsRouted(g, sel, Routing{1})
	if err != nil {
		t.Fatal(err)
	}
	// Under the shallow route, in's downstream excludes the deep path:
	// cost(in) = 0.1 + 1*(shallow 0.4 + out 0.1) = 0.6.
	if math.Abs(costs[0][0]-0.6) > 1e-12 {
		t.Fatalf("routed downstream cost = %v, want 0.6", costs[0][0])
	}
	// Under the deep route it includes both stages: 0.1 + (1.2 + 1.0 + 0.1).
	costsDeep, err := DownstreamCostsRouted(g, sel, Routing{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(costsDeep[0][0]-2.4) > 1e-12 {
		t.Fatalf("deep downstream cost = %v, want 2.4", costsDeep[0][0])
	}
}

func TestSelectionAndRoutingClone(t *testing.T) {
	g := choiceGraph()
	sel := DefaultSelection(g)
	cl := sel.Clone()
	cl[0] = 0
	sel[0] = 0
	r := DefaultRouting(g)
	rc := r.Clone()
	rc[0] = 1
	if r[0] == rc[0] {
		t.Fatal("routing clone shares storage")
	}
}

func TestLayeredGraphShape(t *testing.T) {
	g := LayeredGraph(3, 2, 4)
	// ingest + sink + 3*2 stages.
	if g.N() != 8 {
		t.Fatalf("N = %d", g.N())
	}
	if len(g.Inputs()) != 1 || len(g.Outputs()) != 1 {
		t.Fatal("inputs/outputs wrong")
	}
	for _, p := range g.PEs {
		if p.Name != "ingest" && p.Name != "sink" && len(p.Alternates) != 4 {
			t.Fatalf("%s has %d alternates", p.Name, len(p.Alternates))
		}
	}
	// Degenerate parameters clamp.
	g2 := LayeredGraph(0, 0, 0)
	if g2.N() != 3 {
		t.Fatalf("clamped N = %d", g2.N())
	}
	// The value ladder stays within (0, 1] and costs positive.
	for _, p := range g.PEs {
		for _, a := range p.Alternates {
			if a.Value <= 0 || a.Value > 1 || a.Cost <= 0 {
				t.Fatalf("bad ladder entry %+v", a)
			}
		}
	}
}
