package dataflow

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAlternateValidate(t *testing.T) {
	cases := []struct {
		name string
		alt  Alternate
		ok   bool
	}{
		{"valid", Alt("a", 1.0, 0.5, 1.0), true},
		{"valid low value", Alt("a", 0.01, 0.5, 0.2), true},
		{"empty name", Alt("", 1.0, 0.5, 1.0), false},
		{"zero value", Alt("a", 0, 0.5, 1.0), false},
		{"value above one", Alt("a", 1.5, 0.5, 1.0), false},
		{"negative value", Alt("a", -0.5, 0.5, 1.0), false},
		{"zero cost", Alt("a", 1.0, 0, 1.0), false},
		{"negative cost", Alt("a", 1.0, -1, 1.0), false},
		{"zero selectivity", Alt("a", 1.0, 0.5, 0), false},
		{"negative selectivity", Alt("a", 1.0, 0.5, -0.1), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.alt.Validate()
			if c.ok && err != nil {
				t.Fatalf("want valid, got %v", err)
			}
			if !c.ok && err == nil {
				t.Fatalf("want error, got nil")
			}
		})
	}
}

func TestGraphValidateRejectsCycle(t *testing.T) {
	pes := []*PE{
		{Name: "a", Alternates: []Alternate{Alt("x", 1, 1, 1)}},
		{Name: "b", Alternates: []Alternate{Alt("x", 1, 1, 1)}},
		{Name: "c", Alternates: []Alternate{Alt("x", 1, 1, 1)}},
		{Name: "src", Alternates: []Alternate{Alt("x", 1, 1, 1)}},
	}
	edges := []Edge{{3, 0}, {0, 1}, {1, 2}, {2, 0}}
	if _, err := NewGraph(pes, edges); err == nil {
		t.Fatal("cycle accepted")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestGraphValidateRejectsSelfLoop(t *testing.T) {
	pes := []*PE{{Name: "a", Alternates: []Alternate{Alt("x", 1, 1, 1)}}}
	if _, err := NewGraph(pes, []Edge{{0, 0}}); err == nil {
		t.Fatal("self loop accepted")
	}
}

func TestGraphValidateRejectsDuplicates(t *testing.T) {
	pes := []*PE{
		{Name: "a", Alternates: []Alternate{Alt("x", 1, 1, 1)}},
		{Name: "a", Alternates: []Alternate{Alt("x", 1, 1, 1)}},
	}
	if _, err := NewGraph(pes, []Edge{{0, 1}}); err == nil {
		t.Fatal("duplicate PE name accepted")
	}
	pes2 := []*PE{
		{Name: "a", Alternates: []Alternate{Alt("x", 1, 1, 1), Alt("x", 1, 2, 1)}},
		{Name: "b", Alternates: []Alternate{Alt("x", 1, 1, 1)}},
	}
	if _, err := NewGraph(pes2, []Edge{{0, 1}}); err == nil {
		t.Fatal("duplicate alternate name accepted")
	}
	pes3 := []*PE{
		{Name: "a", Alternates: []Alternate{Alt("x", 1, 1, 1)}},
		{Name: "b", Alternates: []Alternate{Alt("x", 1, 1, 1)}},
	}
	if _, err := NewGraph(pes3, []Edge{{0, 1}, {0, 1}}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestGraphValidateRequiresAlternate(t *testing.T) {
	pes := []*PE{{Name: "a"}, {Name: "b", Alternates: []Alternate{Alt("x", 1, 1, 1)}}}
	if _, err := NewGraph(pes, []Edge{{0, 1}}); err == nil {
		t.Fatal("PE without alternates accepted")
	}
}

func TestGraphValidateEdgeRange(t *testing.T) {
	pes := []*PE{
		{Name: "a", Alternates: []Alternate{Alt("x", 1, 1, 1)}},
		{Name: "b", Alternates: []Alternate{Alt("x", 1, 1, 1)}},
	}
	if _, err := NewGraph(pes, []Edge{{0, 5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	if _, err := NewGraph(nil, nil); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestFig1Structure(t *testing.T) {
	g := Fig1Graph()
	if g.N() != 4 {
		t.Fatalf("want 4 PEs, got %d", g.N())
	}
	in, out := g.Inputs(), g.Outputs()
	if len(in) != 1 || g.PEs[in[0]].Name != "E1" {
		t.Fatalf("inputs = %v", in)
	}
	if len(out) != 1 || g.PEs[out[0]].Name != "E4" {
		t.Fatalf("outputs = %v", out)
	}
	if len(g.PEs[1].Alternates) != 2 || len(g.PEs[2].Alternates) != 2 {
		t.Fatal("E2/E3 must have two alternates each")
	}
	if got := len(g.Successors(in[0])); got != 2 {
		t.Fatalf("E1 successors = %d, want 2 (and-split)", got)
	}
	if got := len(g.Predecessors(out[0])); got != 2 {
		t.Fatalf("E4 predecessors = %d, want 2 (multi-merge)", got)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	for _, g := range []*Graph{Fig1Graph(), EvalGraph(), DiamondGraph()} {
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		pos := make([]int, g.N())
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("edge %d->%d violated in order %v", e.From, e.To, order)
			}
		}
	}
}

func TestForwardBFSStartsAtInputs(t *testing.T) {
	g := DiamondGraph()
	order := g.ForwardBFS()
	if len(order) != g.N() {
		t.Fatalf("BFS covered %d of %d PEs", len(order), g.N())
	}
	if g.PEs[order[0]].Name != "in" {
		t.Fatalf("forward BFS starts at %q", g.PEs[order[0]].Name)
	}
	rev := g.ReverseBFS()
	if g.PEs[rev[0]].Name != "out" {
		t.Fatalf("reverse BFS starts at %q", g.PEs[rev[0]].Name)
	}
}

func TestSelectionValueAndValidate(t *testing.T) {
	g := Fig1Graph()
	sel := DefaultSelection(g)
	if err := sel.Validate(g); err != nil {
		t.Fatal(err)
	}
	// All default alternates have value 1.0.
	if v := sel.Value(g); v != 1.0 {
		t.Fatalf("default value = %v, want 1", v)
	}
	sel[1], sel[2] = 1, 1 // e2 for E2 (0.9) and E3 (0.8)
	want := (1.0 + 0.9 + 0.8 + 1.0) / 4
	if v := sel.Value(g); v != want {
		t.Fatalf("value = %v, want %v", v, want)
	}
	bad := Selection{0, 0, 9, 0}
	if err := bad.Validate(g); err == nil {
		t.Fatal("out-of-range selection accepted")
	}
	short := Selection{0}
	if err := short.Validate(g); err == nil {
		t.Fatal("short selection accepted")
	}
}

func TestPropagateRatesFig1(t *testing.T) {
	g := Fig1Graph()
	sel := DefaultSelection(g)
	in := InputRates{0: 10}
	inRate, outRate, err := PropagateRates(g, sel, in)
	if err != nil {
		t.Fatal(err)
	}
	// E1 sel=1.0 -> out 10, duplicated to E2 and E3 (10 each).
	if outRate[0] != 10 || inRate[1] != 10 || inRate[2] != 10 {
		t.Fatalf("E1 out=%v E2 in=%v E3 in=%v", outRate[0], inRate[1], inRate[2])
	}
	// E2 sel=1.0 -> 10; E3 sel=0.8 -> 8; E4 in = 18.
	if outRate[1] != 10 || outRate[2] != 8 {
		t.Fatalf("E2 out=%v E3 out=%v", outRate[1], outRate[2])
	}
	if inRate[3] != 18 || outRate[3] != 18 {
		t.Fatalf("E4 in=%v out=%v", inRate[3], outRate[3])
	}
}

func TestPropagateRatesRejectsBadInputs(t *testing.T) {
	g := Fig1Graph()
	sel := DefaultSelection(g)
	if _, _, err := PropagateRates(g, sel, InputRates{1: 5}); err == nil {
		t.Fatal("rate on non-input PE accepted")
	}
	if _, _, err := PropagateRates(g, sel, InputRates{0: -5}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, _, err := PropagateRates(g, sel, InputRates{42: 5}); err == nil {
		t.Fatal("out-of-range PE accepted")
	}
}

func TestCoreDemand(t *testing.T) {
	g := Fig1Graph()
	sel := DefaultSelection(g)
	demand, err := CoreDemand(g, sel, InputRates{0: 10})
	if err != nil {
		t.Fatal(err)
	}
	// demand = inRate * cost.
	want := []float64{10 * 0.30, 10 * 1.20, 10 * 1.50, 18 * 0.40}
	for i := range want {
		if diff := demand[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("demand[%d] = %v, want %v", i, demand[i], want[i])
		}
	}
}

func TestDownstreamCostsChain(t *testing.T) {
	// a -> b -> c with selectivities 2, 1, 1: cost entering a must include
	// 2x the downstream of b.
	g := NewBuilder().
		AddPE("a", Alt("x", 1, 1.0, 2.0)).
		AddPE("b", Alt("x", 1, 3.0, 1.0)).
		AddPE("c", Alt("x", 1, 5.0, 1.0)).
		Chain("a", "b", "c").
		MustBuild()
	sel := DefaultSelection(g)
	costs, err := DownstreamCosts(g, sel)
	if err != nil {
		t.Fatal(err)
	}
	// c: 5; b: 3 + 1*5 = 8; a: 1 + 2*8 = 17.
	if costs[2][0] != 5 || costs[1][0] != 8 || costs[0][0] != 17 {
		t.Fatalf("costs = %v", costs)
	}
}

func TestDownstreamCostsExceedLocal(t *testing.T) {
	g := EvalGraph()
	sel := DefaultSelection(g)
	costs, err := DownstreamCosts(g, sel)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range g.PEs {
		for j, a := range p.Alternates {
			if len(g.Successors(i)) > 0 && costs[i][j] <= a.Cost {
				t.Fatalf("PE %q alt %q: global cost %v not above local %v", p.Name, a.Name, costs[i][j], a.Cost)
			}
			if len(g.Successors(i)) == 0 && costs[i][j] != a.Cost {
				t.Fatalf("sink PE %q: global cost %v != local %v", p.Name, costs[i][j], a.Cost)
			}
		}
	}
}

func TestMaxMinValue(t *testing.T) {
	g := Fig1Graph()
	if v := MaxValue(g); v != 1.0 {
		t.Fatalf("MaxValue = %v", v)
	}
	want := (1.0 + 0.9 + 0.8 + 1.0) / 4
	if v := MinValue(g); v != want {
		t.Fatalf("MinValue = %v, want %v", v, want)
	}
	if MaxValue(g) < MinValue(g) {
		t.Fatal("max < min")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().AddPE("a", Alt("x", 1, 1, 1)).Connect("a", "nope").Build(); err == nil {
		t.Fatal("unknown edge endpoint accepted")
	}
	if _, err := NewBuilder().AddPE("a", Alt("x", 1, 1, 1)).AddPE("a", Alt("x", 1, 1, 1)).Build(); err == nil {
		t.Fatal("duplicate AddPE accepted")
	}
	if _, err := NewBuilder().SetMsgBytes("ghost", 10).Build(); err == nil {
		t.Fatal("SetMsgBytes on unknown PE accepted")
	}
}

func TestBuilderMsgBytes(t *testing.T) {
	g := NewBuilder().
		DefaultMsgBytes(2048).
		AddPE("a", Alt("x", 1, 1, 1)).
		AddPE("b", Alt("x", 1, 1, 1)).
		SetMsgBytes("a", 512).
		Connect("a", "b").
		MustBuild()
	if g.MsgBytes(0) != 512 {
		t.Fatalf("MsgBytes(a) = %d", g.MsgBytes(0))
	}
	if g.MsgBytes(1) != 2048 {
		t.Fatalf("MsgBytes(b) = %d", g.MsgBytes(1))
	}
}

func TestAlternateIndex(t *testing.T) {
	g := Fig1Graph()
	if i := g.PEs[1].AlternateIndex("e2"); i != 1 {
		t.Fatalf("AlternateIndex(e2) = %d", i)
	}
	if i := g.PEs[1].AlternateIndex("ghost"); i != -1 {
		t.Fatalf("AlternateIndex(ghost) = %d", i)
	}
}

func TestGraphString(t *testing.T) {
	s := Fig1Graph().String()
	for _, want := range []string{"4 PEs", "4 edges", "E2[2]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

// randomDAG builds a random layered DAG for property tests.
func randomDAG(r *rand.Rand) *Graph {
	n := 2 + r.Intn(10)
	pes := make([]*PE, n)
	for i := range pes {
		alts := make([]Alternate, 1+r.Intn(3))
		for j := range alts {
			alts[j] = Alt(
				string(rune('a'+j)),
				0.1+0.9*r.Float64(),
				0.05+2*r.Float64(),
				0.1+1.9*r.Float64(),
			)
		}
		pes[i] = &PE{Name: "pe" + string(rune('A'+i)), Alternates: alts}
	}
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.35 {
				edges = append(edges, Edge{i, j})
			}
		}
	}
	// Ensure connectivity to keep inputs/outputs nonempty: chain fallback.
	if len(edges) == 0 {
		for i := 0; i+1 < n; i++ {
			edges = append(edges, Edge{i, i + 1})
		}
	}
	g, err := NewGraph(pes, edges)
	if err != nil {
		// Forward-only edges can never cycle; any error is a bug.
		panic(err)
	}
	return g
}

func TestPropertyTopoOrderIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(rand.New(rand.NewSource(seed)))
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		seen := make(map[int]bool, len(order))
		for _, v := range order {
			if v < 0 || v >= g.N() || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(order) == g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRateConservation(t *testing.T) {
	// Property: with all selectivities forced to 1, total output rate at
	// sinks equals total external input scaled by path duplication. More
	// robustly: every PE's inRate equals the sum of its predecessors'
	// outRate, and outRate = inRate * selectivity.
	f := func(seed int64, rate float64) bool {
		rate = 1 + math.Abs(math.Mod(rate, 1)) // in [1,2)
		if math.IsNaN(rate) || math.IsInf(rate, 0) {
			rate = 1.5
		}
		g := randomDAG(rand.New(rand.NewSource(seed)))
		sel := DefaultSelection(g)
		in := InputRates{}
		for _, i := range g.Inputs() {
			in[i] = rate
		}
		inRate, outRate, err := PropagateRates(g, sel, in)
		if err != nil {
			return false
		}
		for i := range g.PEs {
			want := in[i]
			for _, p := range g.Predecessors(i) {
				want += outRate[p]
			}
			if diff := inRate[i] - want; diff > 1e-9 || diff < -1e-9 {
				return false
			}
			wantOut := inRate[i] * sel.Alt(g, i).Selectivity
			if diff := outRate[i] - wantOut; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDownstreamCostMonotone(t *testing.T) {
	// Property: the global cost of an alternate is at least its local cost,
	// and strictly increasing in selectivity when downstream work exists.
	f := func(seed int64) bool {
		g := randomDAG(rand.New(rand.NewSource(seed)))
		sel := DefaultSelection(g)
		costs, err := DownstreamCosts(g, sel)
		if err != nil {
			return false
		}
		for i, p := range g.PEs {
			for j, a := range p.Alternates {
				if costs[i][j] < a.Cost-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyValueBounds(t *testing.T) {
	// Property: Gamma of any valid selection lies in [MinValue, MaxValue].
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r)
		sel := DefaultSelection(g)
		for i := range sel {
			sel[i] = r.Intn(len(g.PEs[i].Alternates))
		}
		v := sel.Value(g)
		return v >= MinValue(g)-1e-12 && v <= MaxValue(g)+1e-12 && v > 0 && v <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
