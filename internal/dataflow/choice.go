package dataflow

import "fmt"

// ChoiceGroup declares choice semantics on one PE's output port (§3 lists
// choice among the supported edge semantics; §9 proposes "dynamic paths" —
// alternate implementations at the granularity of a subset of the graph).
// Messages emitted by From route to exactly ONE of Targets — the active
// route — instead of being duplicated onto all of them. Switching the
// active route at runtime switches the whole downstream sub-path, giving
// the scheduler the coarser-grained control knob of the paper's future
// work.
type ChoiceGroup struct {
	// Name identifies the group (unique within the graph).
	Name string
	// From is the PE whose output port carries choice semantics.
	From int
	// Targets are the successor PEs of From that participate in the
	// choice; each must be connected by an edge From->target. Successors
	// of From outside any group keep and-split duplication.
	Targets []int
}

// Routing selects the active target index for every choice group, parallel
// to Graph.Choices.
type Routing []int

// DefaultRouting activates target 0 of every group.
func DefaultRouting(g *Graph) Routing {
	return make(Routing, len(g.Choices))
}

// Validate checks the routing against the graph.
func (r Routing) Validate(g *Graph) error {
	if len(r) != len(g.Choices) {
		return fmt.Errorf("dataflow: routing covers %d groups, graph has %d", len(r), len(g.Choices))
	}
	for i, t := range r {
		if t < 0 || t >= len(g.Choices[i].Targets) {
			return fmt.Errorf("dataflow: routing for group %q: target %d out of range", g.Choices[i].Name, t)
		}
	}
	return nil
}

// Clone returns an independent copy.
func (r Routing) Clone() Routing {
	return append(Routing(nil), r...)
}

// validateChoices checks the group declarations; called from Validate.
func (g *Graph) validateChoices() error {
	seenName := map[string]bool{}
	owner := map[int]string{} // target PE -> group that claims it
	for _, c := range g.Choices {
		if c.Name == "" {
			return fmt.Errorf("dataflow: choice group with empty name")
		}
		if seenName[c.Name] {
			return fmt.Errorf("dataflow: duplicate choice group %q", c.Name)
		}
		seenName[c.Name] = true
		if c.From < 0 || c.From >= g.N() {
			return fmt.Errorf("dataflow: choice group %q: from PE %d out of range", c.Name, c.From)
		}
		if len(c.Targets) < 2 {
			return fmt.Errorf("dataflow: choice group %q needs >= 2 targets", c.Name)
		}
		succ := map[int]bool{}
		for _, s := range g.Successors(c.From) {
			succ[s] = true
		}
		seenTarget := map[int]bool{}
		for _, t := range c.Targets {
			if !succ[t] {
				return fmt.Errorf("dataflow: choice group %q: %q is not a successor of %q",
					c.Name, g.PEs[t].Name, g.PEs[c.From].Name)
			}
			if seenTarget[t] {
				return fmt.Errorf("dataflow: choice group %q: duplicate target %q", c.Name, g.PEs[t].Name)
			}
			seenTarget[t] = true
			if prev, claimed := owner[t]; claimed {
				return fmt.Errorf("dataflow: PE %q belongs to choice groups %q and %q",
					g.PEs[t].Name, prev, c.Name)
			}
			owner[t] = c.Name
		}
	}
	return nil
}

// ActiveSuccessors returns the PEs that receive pe's output under the
// routing: plain successors keep and-split duplication; for each choice
// group rooted at pe only the active target is included.
func (g *Graph) ActiveSuccessors(pe int, routing Routing) []int {
	if len(g.Choices) == 0 {
		return g.Successors(pe)
	}
	inactive := map[int]bool{}
	for gi, c := range g.Choices {
		if c.From != pe {
			continue
		}
		for ti, t := range c.Targets {
			if ti != routing[gi] {
				inactive[t] = true
			}
		}
	}
	if len(inactive) == 0 {
		return g.Successors(pe)
	}
	var out []int
	for _, s := range g.Successors(pe) {
		if !inactive[s] {
			out = append(out, s)
		}
	}
	return out
}

// ReachableUnderRouting returns, for every PE, whether it can receive
// messages from some input PE under the routing. PEs on inactive paths are
// unreachable and excluded from the routed application value.
func (g *Graph) ReachableUnderRouting(routing Routing) []bool {
	reach := make([]bool, g.N())
	queue := append([]int(nil), g.Inputs()...)
	for _, i := range queue {
		reach[i] = true
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.ActiveSuccessors(v, routing) {
			if !reach[w] {
				reach[w] = true
				queue = append(queue, w)
			}
		}
	}
	return reach
}

// RoutedValue computes the normalized application value over the PEs that
// are active under the routing — Def. 3 restricted to the live sub-path,
// which is the natural extension of Gamma to dynamic paths.
func RoutedValue(g *Graph, sel Selection, routing Routing) (float64, error) {
	if err := sel.Validate(g); err != nil {
		return 0, err
	}
	if err := routing.Validate(g); err != nil {
		return 0, err
	}
	reach := g.ReachableUnderRouting(routing)
	sum, n := 0.0, 0
	for pe := range g.PEs {
		if reach[pe] {
			sum += sel.Alt(g, pe).Value
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("dataflow: no PE reachable under routing")
	}
	return sum / float64(n), nil
}

// PropagateRatesRouted computes steady-state rates like PropagateRates but
// honouring choice-group routing.
func PropagateRatesRouted(g *Graph, sel Selection, routing Routing, in InputRates) (inRate, outRate []float64, err error) {
	if err := sel.Validate(g); err != nil {
		return nil, nil, err
	}
	if err := routing.Validate(g); err != nil {
		return nil, nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	inRate = make([]float64, g.N())
	outRate = make([]float64, g.N())
	for pe, r := range in {
		if pe < 0 || pe >= g.N() || len(g.Predecessors(pe)) != 0 || r < 0 {
			return nil, nil, fmt.Errorf("dataflow: bad input rate %v on PE %d", r, pe)
		}
		inRate[pe] = r
	}
	for _, v := range order {
		outRate[v] = inRate[v] * sel.Alt(g, v).Selectivity
		for _, w := range g.ActiveSuccessors(v, routing) {
			inRate[w] += outRate[v]
		}
	}
	return inRate, outRate, nil
}

// PredictOmegaRouted predicts the relative application throughput for a
// capacity vector under routing (PredictOmega generalized to dynamic
// paths). Output PEs unreachable under the routing contribute 1 (they are
// expected to emit nothing, and do).
func PredictOmegaRouted(g *Graph, sel Selection, routing Routing, in InputRates, capacity []float64) (float64, error) {
	_, exp, err := PropagateRatesRouted(g, sel, routing, in)
	if err != nil {
		return 0, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	arr := make([]float64, g.N())
	got := make([]float64, g.N())
	for pe, r := range in {
		arr[pe] = r
	}
	for _, v := range order {
		p := arr[v]
		if v < len(capacity) && p > capacity[v] {
			p = capacity[v]
		}
		got[v] = p * sel.Alt(g, v).Selectivity
		for _, w := range g.ActiveSuccessors(v, routing) {
			arr[w] += got[v]
		}
	}
	outs := g.Outputs()
	omega := 0.0
	for _, pe := range outs {
		if exp[pe] <= 0 {
			omega++
			continue
		}
		r := got[pe] / exp[pe]
		if r > 1 {
			r = 1
		}
		omega += r
	}
	return omega / float64(len(outs)), nil
}

// PEThroughputsRouted returns each PE's predicted relative throughput
// (processed/arrival at capped rates) under routing; PEs with no arrivals
// report 1. The bottleneck-growth loops rank PEs by this.
func PEThroughputsRouted(g *Graph, sel Selection, routing Routing, in InputRates, capacity []float64) ([]float64, error) {
	if err := sel.Validate(g); err != nil {
		return nil, err
	}
	if err := routing.Validate(g); err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	arr := make([]float64, g.N())
	for pe, r := range in {
		arr[pe] = r
	}
	th := make([]float64, g.N())
	processedOut := make([]float64, g.N())
	for _, v := range order {
		p := arr[v]
		if v < len(capacity) && p > capacity[v] {
			p = capacity[v]
		}
		processedOut[v] = p * sel.Alt(g, v).Selectivity
		for _, w := range g.ActiveSuccessors(v, routing) {
			arr[w] += processedOut[v]
		}
	}
	for v := range th {
		if arr[v] <= 0 {
			th[v] = 1
			continue
		}
		p := arr[v]
		if v < len(capacity) && p > capacity[v] {
			p = capacity[v]
		}
		th[v] = p / arr[v]
	}
	return th, nil
}

// DownstreamCostsRouted computes the global strategy's per-alternate costs
// (DownstreamCosts) honouring choice-group routing: inactive routes do not
// contribute downstream cost because no message flows into them.
func DownstreamCostsRouted(g *Graph, sel Selection, routing Routing) ([][]float64, error) {
	if err := sel.Validate(g); err != nil {
		return nil, err
	}
	if err := routing.Validate(g); err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	nodeCost := make([]float64, g.N())
	for k := len(order) - 1; k >= 0; k-- {
		v := order[k]
		a := sel.Alt(g, v)
		down := 0.0
		for _, w := range g.ActiveSuccessors(v, routing) {
			down += nodeCost[w]
		}
		nodeCost[v] = a.Cost + a.Selectivity*down
	}
	costs := make([][]float64, g.N())
	for i, p := range g.PEs {
		costs[i] = make([]float64, len(p.Alternates))
		down := 0.0
		for _, w := range g.ActiveSuccessors(i, routing) {
			down += nodeCost[w]
		}
		for j, a := range p.Alternates {
			costs[i][j] = a.Cost + a.Selectivity*down
		}
	}
	return costs, nil
}

// RouteCosts returns, for one choice group, the per-message cost of routing
// into each target (the target's nodeCost: its own processing plus
// everything downstream of it under the current selection and routing).
func RouteCosts(g *Graph, sel Selection, routing Routing, group int) ([]float64, error) {
	if group < 0 || group >= len(g.Choices) {
		return nil, fmt.Errorf("dataflow: no choice group %d", group)
	}
	if err := sel.Validate(g); err != nil {
		return nil, err
	}
	if err := routing.Validate(g); err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	nodeCost := make([]float64, g.N())
	for k := len(order) - 1; k >= 0; k-- {
		v := order[k]
		a := sel.Alt(g, v)
		down := 0.0
		for _, w := range g.ActiveSuccessors(v, routing) {
			down += nodeCost[w]
		}
		nodeCost[v] = a.Cost + a.Selectivity*down
	}
	c := g.Choices[group]
	out := make([]float64, len(c.Targets))
	for i, t := range c.Targets {
		out[i] = nodeCost[t]
	}
	return out, nil
}

// ChoiceIndex returns the index of the named group, or -1.
func (g *Graph) ChoiceIndex(name string) int {
	for i, c := range g.Choices {
		if c.Name == name {
			return i
		}
	}
	return -1
}
