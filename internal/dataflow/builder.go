package dataflow

import "fmt"

// Builder assembles a Graph incrementally by PE name. It defers all
// validation to Build so construction code stays linear.
type Builder struct {
	pes     []*PE
	index   map[string]int
	edges   []Edge
	choices []ChoiceGroup
	errs    []error
	msgSize int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{index: map[string]int{}}
}

// DefaultMsgBytes sets the graph-wide message size (bytes).
func (b *Builder) DefaultMsgBytes(n int) *Builder {
	b.msgSize = n
	return b
}

// AddPE registers a PE with its alternates and returns the builder for
// chaining. Duplicate names are reported at Build time.
func (b *Builder) AddPE(name string, alts ...Alternate) *Builder {
	if _, dup := b.index[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("dataflow: builder: duplicate PE %q", name))
		return b
	}
	b.index[name] = len(b.pes)
	b.pes = append(b.pes, &PE{Name: name, Alternates: alts})
	return b
}

// SetMsgBytes overrides the output message size for one PE.
func (b *Builder) SetMsgBytes(pe string, n int) *Builder {
	i, ok := b.index[pe]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("dataflow: builder: unknown PE %q", pe))
		return b
	}
	b.pes[i].OutMsgBytes = n
	return b
}

// Connect adds a directed edge from -> to by PE name.
func (b *Builder) Connect(from, to string) *Builder {
	fi, ok := b.index[from]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("dataflow: builder: unknown PE %q", from))
		return b
	}
	ti, ok := b.index[to]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("dataflow: builder: unknown PE %q", to))
		return b
	}
	b.edges = append(b.edges, Edge{From: fi, To: ti})
	return b
}

// AddChoice declares choice semantics on from's output port over the named
// targets: messages route to exactly one target (the active route), not to
// all. Edges from->target are added automatically when missing.
func (b *Builder) AddChoice(group, from string, targets ...string) *Builder {
	fi, ok := b.index[from]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("dataflow: builder: unknown PE %q", from))
		return b
	}
	ts := make([]int, 0, len(targets))
	for _, t := range targets {
		ti, ok := b.index[t]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("dataflow: builder: unknown PE %q", t))
			return b
		}
		exists := false
		for _, e := range b.edges {
			if e.From == fi && e.To == ti {
				exists = true
				break
			}
		}
		if !exists {
			b.edges = append(b.edges, Edge{From: fi, To: ti})
		}
		ts = append(ts, ti)
	}
	b.choices = append(b.choices, ChoiceGroup{Name: group, From: fi, Targets: ts})
	return b
}

// Chain connects the named PEs in sequence: Chain(a,b,c) adds a->b and b->c.
func (b *Builder) Chain(names ...string) *Builder {
	for i := 0; i+1 < len(names); i++ {
		b.Connect(names[i], names[i+1])
	}
	return b
}

// Build validates and returns the graph.
func (b *Builder) Build() (*Graph, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	g := &Graph{PEs: b.pes, Edges: b.edges, Choices: b.choices, DefaultMsgBytes: b.msgSize}
	if g.DefaultMsgBytes == 0 {
		g.DefaultMsgBytes = DefaultMessageBytes
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Alt is shorthand for constructing an Alternate literal.
func Alt(name string, value, cost, selectivity float64) Alternate {
	return Alternate{Name: name, Value: value, Cost: cost, Selectivity: selectivity}
}
