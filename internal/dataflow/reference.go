package dataflow

import "fmt"

// Fig1Graph builds the paper's abstract dataflow of Fig. 1: four PEs where
// E1 (input) and E4 (output) each have a single alternate, and E2 and E3 have
// two alternates each. E1's output port duplicates messages to both E2 and
// E3 (and-split); E4 interleaves the task-parallel results (multi-merge).
//
//	E1 ──► E2 ──► E4
//	 └───► E3 ───┘
//
// The alternate metrics are not given numerically in the paper; these values
// follow its qualitative description — alternates trade relative value for
// processing cost (e.g. a cheaper, lower-F1 classifier), with the deployment
// heuristic picking e2 (the higher value/cost ratio) for both E2 and E3, as
// in Fig. 1(b).
func Fig1Graph() *Graph {
	return NewBuilder().
		AddPE("E1", Alt("e1", 1.0, 0.30, 1.0)).
		AddPE("E2",
			Alt("e1", 1.0, 1.20, 1.0),
			Alt("e2", 0.9, 0.60, 1.0)).
		AddPE("E3",
			Alt("e1", 1.0, 1.50, 0.8),
			Alt("e2", 0.8, 0.50, 0.8)).
		AddPE("E4", Alt("e1", 1.0, 0.40, 1.0)).
		Connect("E1", "E2").
		Connect("E1", "E3").
		Connect("E2", "E4").
		Connect("E3", "E4").
		MustBuild()
}

// EvalGraph builds the evaluation dataflow used throughout §8: the Fig. 1
// topology "scaled up to 10's of alternates" — each interior PE carries a
// ladder of alternates spanning a wide value/cost range so the alternate
// selection stage has meaningful freedom. Selectivities keep downstream
// rates comparable to the paper's description.
func EvalGraph() *Graph {
	ladder := func(baseCost float64, sel float64) []Alternate {
		// Five alternates per interior PE: value decreases as cost
		// decreases, so cheaper alternates lower Gamma but relieve
		// resource pressure. Value falls off superlinearly at the cheap
		// end, so the best value/cost ratio sits at a4 (~30% cheaper than
		// the default) rather than the cheapest — keeping the dynamism
		// cost savings in the ~15-25% band the paper reports, with a5
		// left as the emergency relief valve under sustained pressure.
		return []Alternate{
			Alt("a1", 1.00, baseCost*1.00, sel),
			Alt("a2", 0.96, baseCost*0.90, sel),
			Alt("a3", 0.90, baseCost*0.80, sel),
			Alt("a4", 0.80, baseCost*0.70, sel),
			Alt("a5", 0.62, baseCost*0.60, sel),
		}
	}
	b := NewBuilder().
		AddPE("ingest", Alt("e1", 1.0, 0.25, 1.0)).
		AddPE("analyze", ladder(1.4, 1.0)...).
		AddPE("classify", ladder(1.8, 0.8)...).
		AddPE("sink", Alt("e1", 1.0, 0.35, 1.0)).
		Connect("ingest", "analyze").
		Connect("ingest", "classify").
		Connect("analyze", "sink").
		Connect("classify", "sink")
	return b.MustBuild()
}

// LayeredGraph builds a width x depth task-parallel pipeline: one ingest
// PE fans out to `width` parallel columns of `depth` stages each, all
// converging on one sink. Interior PEs carry `alts` alternates (ladders
// like EvalGraph's). The evaluation scales this shape to "10's of
// alternates and 100's of VMs" (§8.1); the scalability experiment uses it
// to measure heuristic decision latency on large instances.
func LayeredGraph(width, depth, alts int) *Graph {
	if width < 1 {
		width = 1
	}
	if depth < 1 {
		depth = 1
	}
	if alts < 1 {
		alts = 1
	}
	b := NewBuilder().
		AddPE("ingest", Alt("e1", 1.0, 0.2, 1.0)).
		AddPE("sink", Alt("e1", 1.0, 0.3, 1.0))
	ladder := make([]Alternate, alts)
	for j := range ladder {
		frac := float64(j) / float64(max(alts-1, 1))
		ladder[j] = Alt(
			fmt.Sprintf("a%d", j+1),
			1.0-0.38*frac*frac, // value falls off superlinearly
			1.2*(1.0-0.4*frac), // cost falls linearly
			1.0,
		)
	}
	for w := 0; w < width; w++ {
		prev := "ingest"
		for d := 0; d < depth; d++ {
			name := fmt.Sprintf("s%d_%d", w, d)
			b.AddPE(name, ladder...)
			b.Connect(prev, name)
			prev = name
		}
		b.Connect(prev, "sink")
	}
	return b.MustBuild()
}

// DiamondGraph returns a deeper six-PE diamond used by tests and examples to
// exercise multi-stage propagation: in -> {f1,f2} -> join -> enrich -> out.
func DiamondGraph() *Graph {
	return NewBuilder().
		AddPE("in", Alt("e1", 1.0, 0.2, 1.0)).
		AddPE("f1",
			Alt("full", 1.0, 1.0, 0.9),
			Alt("lite", 0.8, 0.5, 0.9)).
		AddPE("f2",
			Alt("full", 1.0, 1.3, 0.7),
			Alt("lite", 0.7, 0.4, 0.7)).
		AddPE("join", Alt("e1", 1.0, 0.6, 1.0)).
		AddPE("enrich",
			Alt("deep", 1.0, 0.9, 1.0),
			Alt("shallow", 0.85, 0.45, 1.0)).
		AddPE("out", Alt("e1", 1.0, 0.3, 1.0)).
		Connect("in", "f1").
		Connect("in", "f2").
		Connect("f1", "join").
		Connect("f2", "join").
		Connect("join", "enrich").
		Connect("enrich", "out").
		MustBuild()
}
