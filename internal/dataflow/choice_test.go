package dataflow

import (
	"math"
	"testing"
	"testing/quick"
)

// choiceGraph: in routes (choice) to either a deep two-stage path or a
// shallow single-stage path, both converging on out.
//
//	in ─choice─► deepA ─► deepB ─► out
//	        └──► shallow ────────► out
func choiceGraph() *Graph {
	return NewBuilder().
		AddPE("in", Alt("e", 1, 0.1, 1)).
		AddPE("deepA", Alt("e", 1.0, 1.2, 1)).
		AddPE("deepB", Alt("e", 1.0, 1.0, 1)).
		AddPE("shallow", Alt("e", 0.7, 0.4, 1)).
		AddPE("out", Alt("e", 1, 0.1, 1)).
		AddChoice("depth", "in", "deepA", "shallow").
		Connect("deepA", "deepB").
		Connect("deepB", "out").
		Connect("shallow", "out").
		MustBuild()
}

func TestChoiceGraphValidates(t *testing.T) {
	g := choiceGraph()
	if len(g.Choices) != 1 {
		t.Fatalf("choices = %d", len(g.Choices))
	}
	if g.ChoiceIndex("depth") != 0 || g.ChoiceIndex("ghost") != -1 {
		t.Fatal("ChoiceIndex wrong")
	}
}

func TestChoiceValidationErrors(t *testing.T) {
	base := func() *Builder {
		return NewBuilder().
			AddPE("a", Alt("e", 1, 1, 1)).
			AddPE("b", Alt("e", 1, 1, 1)).
			AddPE("c", Alt("e", 1, 1, 1)).
			AddPE("d", Alt("e", 1, 1, 1)).
			Connect("b", "d").
			Connect("c", "d")
	}
	// Single target.
	if _, err := base().AddChoice("g", "a", "b").Build(); err == nil {
		t.Fatal("single-target group accepted")
	}
	// Duplicate target.
	if _, err := base().AddChoice("g", "a", "b", "b").Build(); err == nil {
		t.Fatal("duplicate target accepted")
	}
	// Duplicate group name.
	if _, err := base().AddChoice("g", "a", "b", "c").AddChoice("g", "d", "b", "c").Build(); err == nil {
		t.Fatal("duplicate group name accepted")
	}
	// Unknown PEs through builder.
	if _, err := base().AddChoice("g", "ghost", "b", "c").Build(); err == nil {
		t.Fatal("unknown from accepted")
	}
	if _, err := base().AddChoice("g", "a", "ghost", "c").Build(); err == nil {
		t.Fatal("unknown target accepted")
	}
	// A PE claimed by two groups.
	g2 := base().AddChoice("g1", "a", "b", "c")
	g2.AddPE("e", Alt("e", 1, 1, 1))
	if _, err := g2.AddChoice("g2", "e", "b", "c").Build(); err == nil {
		t.Fatal("target shared between groups accepted")
	}
	// Direct struct construction: target not a successor.
	pes := []*PE{
		{Name: "x", Alternates: []Alternate{Alt("e", 1, 1, 1)}},
		{Name: "y", Alternates: []Alternate{Alt("e", 1, 1, 1)}},
		{Name: "z", Alternates: []Alternate{Alt("e", 1, 1, 1)}},
	}
	g3 := &Graph{PEs: pes, Edges: []Edge{{0, 1}, {1, 2}},
		Choices: []ChoiceGroup{{Name: "g", From: 0, Targets: []int{1, 2}}}}
	if err := g3.Validate(); err == nil {
		t.Fatal("non-successor target accepted")
	}
}

func TestRoutingValidate(t *testing.T) {
	g := choiceGraph()
	r := DefaultRouting(g)
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if err := (Routing{5}).Validate(g); err == nil {
		t.Fatal("out-of-range route accepted")
	}
	if err := (Routing{}).Validate(g); err == nil {
		t.Fatal("short routing accepted")
	}
}

func TestActiveSuccessorsRespectRouting(t *testing.T) {
	g := choiceGraph()
	in := 0
	deep := g.PEs[1] // deepA
	_ = deep
	r := Routing{0} // deepA active
	succ := g.ActiveSuccessors(in, r)
	if len(succ) != 1 || g.PEs[succ[0]].Name != "deepA" {
		t.Fatalf("route 0 successors = %v", succ)
	}
	r = Routing{1} // shallow active
	succ = g.ActiveSuccessors(in, r)
	if len(succ) != 1 || g.PEs[succ[0]].Name != "shallow" {
		t.Fatalf("route 1 successors = %v", succ)
	}
	// PEs without choice groups keep all successors.
	if got := g.ActiveSuccessors(1, r); len(got) != 1 {
		t.Fatalf("deepA successors = %v", got)
	}
}

func TestPropagateRatesRouted(t *testing.T) {
	g := choiceGraph()
	sel := DefaultSelection(g)
	in := InputRates{0: 10}
	// Deep route: shallow gets nothing.
	inR, outR, err := PropagateRatesRouted(g, sel, Routing{0}, in)
	if err != nil {
		t.Fatal(err)
	}
	if inR[1] != 10 || inR[3] != 0 {
		t.Fatalf("deep route: deepA in=%v shallow in=%v", inR[1], inR[3])
	}
	if outR[4] != 10 {
		t.Fatalf("out rate = %v", outR[4])
	}
	// Shallow route: deep path dark.
	inR, outR, err = PropagateRatesRouted(g, sel, Routing{1}, in)
	if err != nil {
		t.Fatal(err)
	}
	if inR[1] != 0 || inR[3] != 10 {
		t.Fatalf("shallow route: deepA in=%v shallow in=%v", inR[1], inR[3])
	}
	if outR[4] != 10 {
		t.Fatalf("out rate = %v", outR[4])
	}
}

func TestReachableUnderRouting(t *testing.T) {
	g := choiceGraph()
	reach := g.ReachableUnderRouting(Routing{1})
	names := map[string]bool{}
	for pe, ok := range reach {
		names[g.PEs[pe].Name] = ok
	}
	if !names["in"] || !names["shallow"] || !names["out"] {
		t.Fatalf("reach = %v", names)
	}
	if names["deepA"] || names["deepB"] {
		t.Fatalf("inactive path reachable: %v", names)
	}
}

func TestRoutedValue(t *testing.T) {
	g := choiceGraph()
	sel := DefaultSelection(g)
	deepVal, err := RoutedValue(g, sel, Routing{0})
	if err != nil {
		t.Fatal(err)
	}
	// Active PEs: in(1), deepA(1), deepB(1), out(1) -> 1.0.
	if deepVal != 1.0 {
		t.Fatalf("deep value = %v", deepVal)
	}
	shallowVal, err := RoutedValue(g, sel, Routing{1})
	if err != nil {
		t.Fatal(err)
	}
	// Active: in(1), shallow(0.7), out(1) -> 0.9.
	if math.Abs(shallowVal-0.9) > 1e-12 {
		t.Fatalf("shallow value = %v", shallowVal)
	}
	// For a graph without choices, RoutedValue == Selection.Value.
	g2 := Fig1Graph()
	v, err := RoutedValue(g2, DefaultSelection(g2), DefaultRouting(g2))
	if err != nil {
		t.Fatal(err)
	}
	if v != DefaultSelection(g2).Value(g2) {
		t.Fatalf("routed %v != plain %v", v, DefaultSelection(g2).Value(g2))
	}
}

func TestRouteCosts(t *testing.T) {
	g := choiceGraph()
	sel := DefaultSelection(g)
	costs, err := RouteCosts(g, sel, DefaultRouting(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	// deepA: 1.2 + 1.0 + 0.1 = 2.3; shallow: 0.4 + 0.1 = 0.5.
	if math.Abs(costs[0]-2.3) > 1e-12 || math.Abs(costs[1]-0.5) > 1e-12 {
		t.Fatalf("route costs = %v", costs)
	}
	if _, err := RouteCosts(g, sel, DefaultRouting(g), 5); err == nil {
		t.Fatal("bad group accepted")
	}
}

func TestPredictOmegaRouted(t *testing.T) {
	g := choiceGraph()
	sel := DefaultSelection(g)
	in := InputRates{0: 10}
	// Ample capacity everywhere: omega 1 on either route.
	caps := []float64{100, 100, 100, 100, 100}
	for _, r := range []Routing{{0}, {1}} {
		om, err := PredictOmegaRouted(g, sel, r, in, caps)
		if err != nil {
			t.Fatal(err)
		}
		if om != 1 {
			t.Fatalf("route %v omega = %v", r, om)
		}
	}
	// Deep path starved: deep route throttles, shallow route unaffected.
	caps = []float64{100, 5, 100, 100, 100}
	omDeep, _ := PredictOmegaRouted(g, sel, Routing{0}, in, caps)
	omShallow, _ := PredictOmegaRouted(g, sel, Routing{1}, in, caps)
	if omDeep >= 0.6 {
		t.Fatalf("deep omega = %v, want throttled", omDeep)
	}
	if omShallow != 1 {
		t.Fatalf("shallow omega = %v", omShallow)
	}
}

func TestPropertyRoutingConservation(t *testing.T) {
	// With unit selectivities, the output rate equals the input rate under
	// every routing choice.
	f := func(route bool, rateRaw uint16) bool {
		g := choiceGraph()
		sel := DefaultSelection(g)
		rate := float64(rateRaw%1000) + 1
		r := Routing{0}
		if route {
			r = Routing{1}
		}
		_, out, err := PropagateRatesRouted(g, sel, r, InputRates{0: rate})
		if err != nil {
			return false
		}
		return math.Abs(out[4]-rate) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
