package dataflow

import (
	"encoding/json"
	"fmt"
	"io"
)

// graphJSON is the canonical wire format for dynamic dataflows: PE and
// edge lists by name, so files stay readable and order-independent.
type graphJSON struct {
	DefaultMsgBytes int          `json:"defaultMsgBytes,omitempty"`
	PEs             []peJSON     `json:"pes"`
	Edges           [][2]string  `json:"edges"`
	Choices         []choiceJSON `json:"choices,omitempty"`
}

type peJSON struct {
	Name       string    `json:"name"`
	MsgBytes   int       `json:"msgBytes,omitempty"`
	Alternates []altJSON `json:"alternates"`
}

type altJSON struct {
	Name        string  `json:"name"`
	Value       float64 `json:"value"`
	Cost        float64 `json:"cost"`
	Selectivity float64 `json:"selectivity"`
}

type choiceJSON struct {
	Name    string   `json:"name"`
	From    string   `json:"from"`
	Targets []string `json:"targets"`
}

// MarshalJSON implements json.Marshaler with the canonical schema.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := graphJSON{DefaultMsgBytes: g.DefaultMsgBytes}
	for _, p := range g.PEs {
		pj := peJSON{Name: p.Name, MsgBytes: p.OutMsgBytes}
		for _, a := range p.Alternates {
			pj.Alternates = append(pj.Alternates, altJSON{
				Name: a.Name, Value: a.Value, Cost: a.Cost, Selectivity: a.Selectivity,
			})
		}
		out.PEs = append(out.PEs, pj)
	}
	for _, e := range g.Edges {
		out.Edges = append(out.Edges, [2]string{g.PEs[e.From].Name, g.PEs[e.To].Name})
	}
	for _, c := range g.Choices {
		cj := choiceJSON{Name: c.Name, From: g.PEs[c.From].Name}
		for _, t := range c.Targets {
			cj.Targets = append(cj.Targets, g.PEs[t].Name)
		}
		out.Choices = append(out.Choices, cj)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler and re-validates the graph.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var in graphJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("dataflow: json: %w", err)
	}
	b := NewBuilder()
	if in.DefaultMsgBytes > 0 {
		b.DefaultMsgBytes(in.DefaultMsgBytes)
	}
	for _, pj := range in.PEs {
		alts := make([]Alternate, 0, len(pj.Alternates))
		for _, a := range pj.Alternates {
			alts = append(alts, Alternate{
				Name: a.Name, Value: a.Value, Cost: a.Cost, Selectivity: a.Selectivity,
			})
		}
		b.AddPE(pj.Name, alts...)
		if pj.MsgBytes > 0 {
			b.SetMsgBytes(pj.Name, pj.MsgBytes)
		}
	}
	for _, e := range in.Edges {
		b.Connect(e[0], e[1])
	}
	for _, c := range in.Choices {
		// AddChoice would add missing edges; in the wire format edges are
		// explicit, so plain declaration via builder is correct (it skips
		// duplicates).
		b.AddChoice(c.Name, c.From, c.Targets...)
	}
	built, err := b.Build()
	if err != nil {
		return err
	}
	*g = *built
	return nil
}

// WriteJSON streams the graph with indentation (a file format, not an API
// payload).
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadJSON parses and validates a graph from r.
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}
