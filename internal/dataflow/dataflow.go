// Package dataflow implements the dynamic dataflow application model from
// Kumbhare et al., "Exploiting Application Dynamism and Cloud Elasticity for
// Continuous Dataflows" (SC'13), Section 3.
//
// A continuous dataflow is a directed acyclic graph of long-running
// Processing Elements (PEs). A dynamic dataflow extends every PE with one or
// more alternate implementations that trade application value against
// processing cost. Edges follow and-split semantics on output ports (an
// output message is duplicated onto every outgoing edge) and multi-merge
// semantics on input ports (messages from all incoming edges interleave).
package dataflow

import (
	"errors"
	"fmt"
	"strings"
)

// Alternate is one implementation choice for a PE (Def. 2). Its metrics are
// the triple the paper attaches to every alternate p_i^j.
type Alternate struct {
	// Name identifies the alternate within its PE (unique per PE).
	Name string
	// Value is the relative value gamma in (0, 1]: the user-defined benefit
	// of this alternate normalized by the best alternate of the PE.
	Value float64
	// Cost is the processing cost c in core-seconds per message on a
	// "standard" CPU core (normalized speed pi = 1).
	Cost float64
	// Selectivity is the ratio s of output messages produced to input
	// messages consumed for one logical unit of work.
	Selectivity float64
}

// Validate reports whether the alternate's metrics are in their legal ranges.
func (a Alternate) Validate() error {
	if a.Name == "" {
		return errors.New("dataflow: alternate has empty name")
	}
	if !(a.Value > 0 && a.Value <= 1) {
		return fmt.Errorf("dataflow: alternate %q: value %v outside (0,1]", a.Name, a.Value)
	}
	if a.Cost <= 0 {
		return fmt.Errorf("dataflow: alternate %q: cost %v must be > 0", a.Name, a.Cost)
	}
	if a.Selectivity <= 0 {
		return fmt.Errorf("dataflow: alternate %q: selectivity %v must be > 0", a.Name, a.Selectivity)
	}
	return nil
}

// PE is a processing element: a continuously executing user task with at
// least one alternate implementation.
type PE struct {
	// Name identifies the PE within the graph (unique).
	Name string
	// Alternates holds the implementation choices; index 0 is the default.
	Alternates []Alternate
	// OutMsgBytes is the size of messages this PE emits, used to model
	// network transfer between VMs. Zero means the graph default applies.
	OutMsgBytes int
}

// BestValue returns the maximum value across the PE's alternates.
func (p *PE) BestValue() float64 {
	best := 0.0
	for _, a := range p.Alternates {
		if a.Value > best {
			best = a.Value
		}
	}
	return best
}

// WorstValue returns the minimum value across the PE's alternates.
func (p *PE) WorstValue() float64 {
	if len(p.Alternates) == 0 {
		return 0
	}
	worst := p.Alternates[0].Value
	for _, a := range p.Alternates[1:] {
		if a.Value < worst {
			worst = a.Value
		}
	}
	return worst
}

// AlternateIndex returns the index of the alternate with the given name, or
// -1 when absent.
func (p *PE) AlternateIndex(name string) int {
	for i, a := range p.Alternates {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Edge is a directed dataflow edge: messages flow From -> To. Endpoints are
// PE indices into Graph.PEs.
type Edge struct {
	From, To int
}

// Graph is a dynamic dataflow: a DAG of PEs with alternates (Defs. 1 and 2).
// Build one with NewBuilder or construct the fields directly and call
// Validate. Indices into PEs are the canonical PE identifiers used across
// this module.
type Graph struct {
	PEs   []*PE
	Edges []Edge

	// Choices declares choice-semantics output ports for dynamic paths
	// (see ChoiceGroup). Empty for plain and-split dataflows.
	Choices []ChoiceGroup

	// DefaultMsgBytes is the message size assumed for PEs that do not set
	// OutMsgBytes. The paper's experiments use ~100 KB messages.
	DefaultMsgBytes int

	succ [][]int
	pred [][]int
}

// DefaultMessageBytes is the paper's evaluation message size (~100 KB/msg).
const DefaultMessageBytes = 100 * 1024

// NewGraph constructs a validated graph from PEs and edges.
func NewGraph(pes []*PE, edges []Edge) (*Graph, error) {
	g := &Graph{PEs: pes, Edges: edges, DefaultMsgBytes: DefaultMessageBytes}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Validate checks structural invariants: non-empty, unique names, legal
// alternates, edge endpoints in range, acyclicity, and non-empty input and
// output PE sets (Def. 1 requires I != {} and O != {}). It also (re)builds
// the adjacency caches, so it must be called after any structural mutation.
func (g *Graph) Validate() error {
	if len(g.PEs) == 0 {
		return errors.New("dataflow: graph has no PEs")
	}
	if g.DefaultMsgBytes <= 0 {
		g.DefaultMsgBytes = DefaultMessageBytes
	}
	seen := make(map[string]bool, len(g.PEs))
	for i, p := range g.PEs {
		if p == nil {
			return fmt.Errorf("dataflow: PE %d is nil", i)
		}
		if p.Name == "" {
			return fmt.Errorf("dataflow: PE %d has empty name", i)
		}
		if seen[p.Name] {
			return fmt.Errorf("dataflow: duplicate PE name %q", p.Name)
		}
		seen[p.Name] = true
		if len(p.Alternates) == 0 {
			return fmt.Errorf("dataflow: PE %q has no alternates (needs >= 1)", p.Name)
		}
		altSeen := make(map[string]bool, len(p.Alternates))
		for _, a := range p.Alternates {
			if err := a.Validate(); err != nil {
				return fmt.Errorf("dataflow: PE %q: %w", p.Name, err)
			}
			if altSeen[a.Name] {
				return fmt.Errorf("dataflow: PE %q: duplicate alternate %q", p.Name, a.Name)
			}
			altSeen[a.Name] = true
		}
		if p.OutMsgBytes < 0 {
			return fmt.Errorf("dataflow: PE %q: negative OutMsgBytes", p.Name)
		}
	}
	g.succ = make([][]int, len(g.PEs))
	g.pred = make([][]int, len(g.PEs))
	edgeSeen := make(map[Edge]bool, len(g.Edges))
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.PEs) || e.To < 0 || e.To >= len(g.PEs) {
			return fmt.Errorf("dataflow: edge %d->%d out of range", e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("dataflow: self loop on PE %q", g.PEs[e.From].Name)
		}
		if edgeSeen[e] {
			return fmt.Errorf("dataflow: duplicate edge %q->%q", g.PEs[e.From].Name, g.PEs[e.To].Name)
		}
		edgeSeen[e] = true
		g.succ[e.From] = append(g.succ[e.From], e.To)
		g.pred[e.To] = append(g.pred[e.To], e.From)
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	if len(g.Inputs()) == 0 {
		return errors.New("dataflow: graph has no input PEs")
	}
	if len(g.Outputs()) == 0 {
		return errors.New("dataflow: graph has no output PEs")
	}
	return g.validateChoices()
}

// N returns the number of PEs.
func (g *Graph) N() int { return len(g.PEs) }

// Successors returns the indices of PEs receiving messages from pe.
// The returned slice is shared; callers must not mutate it.
func (g *Graph) Successors(pe int) []int { return g.succ[pe] }

// Predecessors returns the indices of PEs feeding messages into pe.
// The returned slice is shared; callers must not mutate it.
func (g *Graph) Predecessors(pe int) []int { return g.pred[pe] }

// Inputs returns the indices of input PEs (no incoming edges): the set I
// where external messages enter the dataflow.
func (g *Graph) Inputs() []int {
	var in []int
	for i := range g.PEs {
		if len(g.pred[i]) == 0 {
			in = append(in, i)
		}
	}
	return in
}

// Outputs returns the indices of output PEs (no outgoing edges): the set O
// whose messages are consumed externally.
func (g *Graph) Outputs() []int {
	var out []int
	for i := range g.PEs {
		if len(g.succ[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// MsgBytes returns the output message size for a PE, falling back to the
// graph default.
func (g *Graph) MsgBytes(pe int) int {
	if b := g.PEs[pe].OutMsgBytes; b > 0 {
		return b
	}
	return g.DefaultMsgBytes
}

// TopoOrder returns a topological ordering of the PE indices using Kahn's
// algorithm, or an error naming one PE on a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	indeg := make([]int, len(g.PEs))
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	queue := make([]int, 0, len(g.PEs))
	for i := range g.PEs {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, len(g.PEs))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != len(g.PEs) {
		for i, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("dataflow: cycle detected involving PE %q", g.PEs[i].Name)
			}
		}
		return nil, errors.New("dataflow: cycle detected")
	}
	return order, nil
}

// ForwardBFS returns PE indices in breadth-first order rooted at the input
// PEs. Alg. 1 uses this order for initial resource allocation so that
// neighbouring PEs tend to be collocated.
func (g *Graph) ForwardBFS() []int {
	return g.bfs(g.Inputs(), g.succ)
}

// ReverseBFS returns PE indices in breadth-first order rooted at the output
// PEs following edges backwards. The global strategy's downstream-cost DP
// traverses the graph in this order.
func (g *Graph) ReverseBFS() []int {
	return g.bfs(g.Outputs(), g.pred)
}

func (g *Graph) bfs(roots []int, next [][]int) []int {
	visited := make([]bool, len(g.PEs))
	order := make([]int, 0, len(g.PEs))
	queue := append([]int(nil), roots...)
	for _, r := range roots {
		visited[r] = true
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range next[v] {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return order
}

// String renders a compact description of the graph for logs.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataflow(%d PEs, %d edges; ", len(g.PEs), len(g.Edges))
	for i, p := range g.PEs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s[%d]", p.Name, len(p.Alternates))
	}
	b.WriteString(")")
	return b.String()
}
