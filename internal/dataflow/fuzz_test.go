package dataflow

import (
	"encoding/json"
	"testing"
)

// FuzzGraphJSON checks the graph parser never panics and that anything it
// accepts satisfies the structural invariants.
func FuzzGraphJSON(f *testing.F) {
	seed, err := json.Marshal(Fig1Graph())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	choiceSeed, err := json.Marshal(choiceGraph())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(choiceSeed))
	f.Add(`{"pes":[],"edges":[]}`)
	f.Add(`{"pes":[{"name":"a","alternates":[{"name":"x","value":1,"cost":1,"selectivity":1}]}],"edges":[["a","a"]]}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, in string) {
		var g Graph
		if err := json.Unmarshal([]byte(in), &g); err != nil {
			return
		}
		// Anything accepted is a valid DAG with inputs and outputs.
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatalf("accepted graph has no topo order: %v", err)
		}
		if len(order) != g.N() {
			t.Fatalf("topo covers %d of %d", len(order), g.N())
		}
		if len(g.Inputs()) == 0 || len(g.Outputs()) == 0 {
			t.Fatal("accepted graph without inputs/outputs")
		}
		// Propagation cannot fail on a valid graph.
		in2 := InputRates{}
		for _, pe := range g.Inputs() {
			in2[pe] = 1
		}
		if _, _, err := PropagateRates(&g, DefaultSelection(&g), in2); err != nil {
			t.Fatalf("propagation failed: %v", err)
		}
	})
}
