package dataflow

// PropagateCapped computes steady-state rates like PropagateRates but with
// each PE's processing bounded by capacity[i] (msg/s). Heuristics use it to
// predict the relative application throughput a candidate allocation would
// deliver before committing resources.
//
// Per PE in topological order: processed = min(arrival, capacity), and
// output = processed * selectivity. Queue dynamics are ignored — this is
// the steady-state view an allocation planner needs.
func PropagateCapped(g *Graph, sel Selection, in InputRates, capacity []float64) (inRate, outRate []float64, err error) {
	if err := sel.Validate(g); err != nil {
		return nil, nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	inRate = make([]float64, g.N())
	outRate = make([]float64, g.N())
	for pe, r := range in {
		inRate[pe] = r
	}
	for _, v := range order {
		processed := inRate[v]
		if v < len(capacity) && processed > capacity[v] {
			processed = capacity[v]
		}
		outRate[v] = processed * sel.Alt(g, v).Selectivity
		for _, w := range g.Successors(v) {
			inRate[w] += outRate[v]
		}
	}
	return inRate, outRate, nil
}

// PredictOmega estimates the relative application throughput (Def. 4) an
// allocation with the given per-PE capacities would achieve at the given
// input rates: mean over output PEs of capped/uncapped output, in [0, 1].
func PredictOmega(g *Graph, sel Selection, in InputRates, capacity []float64) (float64, error) {
	_, exp, err := PropagateRates(g, sel, in)
	if err != nil {
		return 0, err
	}
	_, got, err := PropagateCapped(g, sel, in, capacity)
	if err != nil {
		return 0, err
	}
	outs := g.Outputs()
	omega := 0.0
	for _, pe := range outs {
		if exp[pe] <= 0 {
			omega += 1
			continue
		}
		r := got[pe] / exp[pe]
		if r > 1 {
			r = 1
		}
		omega += r
	}
	return omega / float64(len(outs)), nil
}

// PEThroughputs returns each PE's predicted relative throughput
// (capped arrival / uncapped arrival is not meaningful; the per-PE measure
// the deployment loop ranks bottlenecks by is processed/arrival at the
// capped rates). PEs with no arrivals report 1.
func PEThroughputs(g *Graph, sel Selection, in InputRates, capacity []float64) ([]float64, error) {
	arr, _, err := PropagateCapped(g, sel, in, capacity)
	if err != nil {
		return nil, err
	}
	th := make([]float64, g.N())
	for i := range th {
		if arr[i] <= 0 {
			th[i] = 1
			continue
		}
		processed := arr[i]
		if i < len(capacity) && processed > capacity[i] {
			processed = capacity[i]
		}
		th[i] = processed / arr[i]
	}
	return th, nil
}
