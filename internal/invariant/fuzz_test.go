package invariant_test

import (
	"os"
	"path/filepath"
	"testing"

	"dynamicdf/internal/invariant"
	"dynamicdf/internal/scenario"
)

// FuzzCheckerConservation feeds arbitrary scenario JSON through the full
// parse -> build -> run pipeline with the strict invariant checker forced
// on. Malformed or unbuildable inputs are skipped — the only failure mode
// is a run that trips a conservation law. The seed corpus in testdata/
// covers the ideal cloud, a faulty control plane with crashes, and the
// spot market with routing choices.
func FuzzCheckerConservation(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no seed corpus under testdata: %v", err)
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := scenario.ParseBytes(data)
		if err != nil {
			t.Skip()
		}
		if sc.Infra.Kind == "csvdir" || sc.Infra.Dir != "" {
			t.Skip() // no filesystem access from the fuzz body
		}
		if len(sc.Graph.PEs) > 64 {
			t.Skip()
		}
		// Clamp to keep each execution short: correctness, not scale, is
		// under test here.
		if sc.HorizonHours <= 0 || sc.HorizonHours > 0.2 {
			sc.HorizonHours = 0.1
		}
		if sc.IntervalSec < 0 {
			sc.IntervalSec = 0 // builder default
		}
		if sc.Rate.Mean < 0.1 || sc.Rate.Mean > 50 {
			sc.Rate.Mean = 5
		}
		if sc.MaxVMs > 64 {
			sc.MaxVMs = 64
		}
		sc.Check = &scenario.CheckSpec{Enabled: true, Strict: true}
		built, err := sc.Build()
		if err != nil {
			t.Skip() // rejected by the builder; nothing to check
		}
		if _, err := built.Engine.Run(built.Scheduler); err != nil {
			if v, ok := invariant.As(err); ok {
				t.Fatalf("law %q violated at t=%ds: %s\ninput: %s", v.Law, v.Sec, v.Msg, data)
			}
			// Other runtime errors (exhausted capacity, scheduler failures
			// on hostile inputs) are not conservation bugs.
		}
	})
}
