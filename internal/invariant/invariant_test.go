package invariant

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// cleanState returns a state that satisfies every default law: one PE in
// flow balance, one fully-accounted VM, consistent counters.
func cleanState() *State {
	return &State{
		Sec:         120,
		IntervalSec: 60,
		In:          []float64{5},
		Processed:   []float64{4},
		QueueBefore: []float64{10},
		QueueAfter:  []float64{70}, // 10 + (5-4)*60
		Backlog:     70,
		Omega:       0.8,
		Gamma:       0.9,
		GammaMin:    0.5,
		GammaMax:    1,
		CostUSD:     0.34,
		PrevCostUSD: 0.34,
		VMs: []VMState{
			{ID: 0, RatedCores: 4, UsedCores: 2, BilledUSD: 0.34},
			{ID: 1, RatedCores: 2, UsedCores: 0, Pending: true},
		},
		Placements: []Placement{{PE: 0, VM: 0, Cores: 2}},
	}
}

func TestCleanStatePassesAllLaws(t *testing.T) {
	c := NewStrict()
	if v := c.Check(cleanState()); v != nil {
		t.Fatalf("clean state violates %q: %s", v.Law, v.Msg)
	}
	if c.Count() != 0 {
		t.Fatalf("clean state recorded %d violations", c.Count())
	}
}

// TestEachLawTrips corrupts the clean state one law at a time and asserts
// the checker names exactly that law, with the sim-second attached.
func TestEachLawTrips(t *testing.T) {
	cases := []struct {
		law     string
		corrupt func(st *State)
	}{
		{LawConservation, func(st *State) { st.Processed[0] = 1 }},
		{LawQueues, func(st *State) { st.MinQueue = -0.5 }},
		{LawQueues, func(st *State) { st.QueueAfter[0] = -3; st.Processed[0] = 4 + 73.0/60 }},
		{LawBilling, func(st *State) { st.PrevCostUSD = 1.0 }},
		{LawBilling, func(st *State) { st.VMs[1].BilledUSD = 0.1 }},
		{LawFleet, func(st *State) { st.VMs[0].UsedCores = 9; st.Placements[0].Cores = 9 }},
		{LawFleet, func(st *State) { st.Placements[0].VM = 7 }},
		{LawFleet, func(st *State) { st.VMs[0].Stopped = true }},
		{LawBounds, func(st *State) { st.Omega = 1.2 }},
		{LawBounds, func(st *State) { st.Gamma = 0.2 }},
		{LawAudit, func(st *State) { st.Crashes = 2 }},
		{LawAudit, func(st *State) { st.Preemptions = 1; st.Crashes = 1; st.PreemptEvents = 0 }},
	}
	for i, tc := range cases {
		t.Run(fmt.Sprintf("%02d-%s", i, tc.law), func(t *testing.T) {
			st := cleanState()
			tc.corrupt(st)
			c := New()
			v := c.Check(st)
			if v == nil {
				t.Fatalf("corrupted state passed all laws")
			}
			if v.Law != tc.law {
				t.Fatalf("violated %q (%s), want %q", v.Law, v.Msg, tc.law)
			}
			if v.Sec != st.Sec {
				t.Fatalf("violation at t=%d, want %d", v.Sec, st.Sec)
			}
			if !strings.Contains(v.Error(), tc.law) || !strings.Contains(v.Error(), "t=120s") {
				t.Fatalf("Error() = %q lacks law name or sim-second", v.Error())
			}
		})
	}
}

func TestViolationAsAndErrorsAs(t *testing.T) {
	st := cleanState()
	st.Omega = -1
	v := NewStrict().Check(st)
	if v == nil {
		t.Fatal("no violation")
	}
	wrapped := fmt.Errorf("run failed: %w", error(v))
	got, ok := As(wrapped)
	if !ok || got.Law != LawBounds {
		t.Fatalf("As(wrapped) = %v, %v", got, ok)
	}
	var target *Violation
	if !errors.As(wrapped, &target) || target.Sec != st.Sec {
		t.Fatalf("errors.As failed: %v", target)
	}
	if _, ok := As(errors.New("plain")); ok {
		t.Fatal("As matched a non-violation error")
	}
}

func TestLenientCheckerAccumulates(t *testing.T) {
	c := New()
	st := cleanState()
	st.Omega = 2     // bounds
	st.MinQueue = -1 // queues
	if v := c.Check(st); v == nil {
		t.Fatal("no violation returned")
	}
	// Both broken laws are recorded for the step, in law-catalog order.
	if c.Count() != 2 {
		t.Fatalf("recorded %d violations, want 2", c.Count())
	}
	vs := c.Violations()
	if vs[0].Law != LawQueues || vs[1].Law != LawBounds {
		t.Fatalf("laws = %q, %q", vs[0].Law, vs[1].Law)
	}
	if snap := vs[1].Snapshot; snap.Omega != 2 || snap.VMs != 2 || snap.UsedCores != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatalf("Reset left %d violations", c.Count())
	}
}

func TestEpsilonTolerance(t *testing.T) {
	st := cleanState()
	st.QueueAfter[0] += 1e-9 // within DefaultEpsilon of balance
	if v := New().Check(st); v != nil {
		t.Fatalf("sub-epsilon residual tripped %q: %s", v.Law, v.Msg)
	}
	tight := &Checker{Epsilon: 1e-12}
	if v := tight.Check(st); v == nil || v.Law != LawConservation {
		t.Fatalf("tight epsilon did not trip conservation: %v", v)
	}
}

func TestCustomLawSet(t *testing.T) {
	called := false
	c := &Checker{Laws: []Law{{Name: "always-fails", Check: func(st *State, eps float64) string {
		called = true
		return "no"
	}}}}
	v := c.Check(cleanState())
	if !called || v == nil || v.Law != "always-fails" {
		t.Fatalf("custom law not used: %v", v)
	}
}

func TestDefaultLawsIsACopy(t *testing.T) {
	laws := DefaultLaws()
	laws[0] = Law{Name: "clobbered", Check: func(*State, float64) string { return "" }}
	if defaultLaws[0].Name != LawConservation {
		t.Fatal("DefaultLaws exposed the shared slice")
	}
}
