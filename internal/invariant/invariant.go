// Package invariant is the simulator's runtime correctness harness: a
// pluggable per-step checker the engine calls at the end of every simulated
// interval (behind a nil-check hook, like the tracer) that asserts
// conservation-style laws over a snapshot of engine state. The laws encode
// what must be true of any run regardless of the scheduler driving it —
// message conservation at every PE's queue, non-negative buffers, monotone
// billing, fleet core accounting, Ω/Γ bounds, and audit/trace agreement —
// so a logic error in flow propagation or billing surfaces at the interval
// it happens, with the law name and sim-second attached, instead of as a
// subtly wrong figure three layers up.
//
// The package depends only on the standard library: the engine fills a
// plain-data State and the laws assert over it, so the checker can also be
// driven directly by tests and fuzz targets with synthetic states.
package invariant

import (
	"errors"
	"fmt"
	"sync"
)

// DefaultEpsilon tolerates float accumulation across a step's per-VM flow
// arithmetic (the engine clamps queues below 1e-9 to zero, and sums run in
// sorted-key order, so the residual is far below this).
const DefaultEpsilon = 1e-6

// State is the engine-state snapshot one step hands to the checker. All
// quantities are plain data so the package needs no simulator imports;
// slices indexed by PE have one entry per graph PE. The engine reuses one
// State across steps — laws must not retain it.
type State struct {
	// Sec is the simulation clock at the END of the checked interval.
	Sec int64
	// IntervalSec is the interval length dt.
	IntervalSec int64

	// Per-PE flow accounting for the interval just executed. In and
	// Processed are rates (msg/s); QueueBefore/QueueAfter are messages
	// buffered at the interval's start (after crash cleanup) and end.
	In          []float64
	Processed   []float64
	QueueBefore []float64
	QueueAfter  []float64
	// MinQueue is the smallest single per-VM queue cell after the step
	// (negative means a buffer went below zero somewhere).
	MinQueue float64
	// Backlog is the total queued messages across all PEs.
	Backlog float64

	// Omega is the interval's relative application throughput; Gamma the
	// normalized application value, bounded by the graph's alternate value
	// range [GammaMin, GammaMax].
	Omega    float64
	Gamma    float64
	GammaMin float64
	GammaMax float64

	// CostUSD is cumulative billing μ at the end of the interval;
	// PrevCostUSD is μ at the end of the previous interval (0 initially).
	CostUSD     float64
	PrevCostUSD float64

	// LostMessages and MigratedBytes are the engine's cumulative tallies.
	LostMessages  float64
	MigratedBytes float64

	// Crash/preemption counters and the number of crash/preempt events the
	// audit path recorded — the two are maintained at different sites and
	// must agree.
	Crashes       int
	Preemptions   int
	CrashEvents   int
	PreemptEvents int

	// VMs snapshots every VM ever acquired; Placements lists every
	// (PE, VM, cores>0) assignment cell.
	VMs        []VMState
	Placements []Placement

	// TenantOmega is each tenant's interval Ω in a multi-tenant run (nil
	// otherwise). Each entry obeys the same [0, 1] bound as Omega.
	TenantOmega []float64
}

// VMState is the billing- and capacity-relevant view of one VM.
type VMState struct {
	ID         int
	RatedCores int
	UsedCores  int
	Stopped    bool
	Pending    bool
	BilledUSD  float64
}

// Placement is one PE-to-VM core assignment.
type Placement struct {
	PE    int
	VM    int
	Cores int
}

// Violation is a broken law: which law, at which sim-second, with a compact
// state snapshot for diagnosis. It is the typed error Run/RunContext return
// when a strict checker trips; detect it with invariant.As or errors.As.
type Violation struct {
	// Law is the name of the broken law (see DefaultLaws).
	Law string
	// Sec is the simulation time at the end of the violating interval.
	Sec int64
	// Msg describes the violated relation with the offending values.
	Msg string
	// Snapshot captures headline state at the violation.
	Snapshot Snapshot
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("invariant: law %q violated at t=%ds: %s", v.Law, v.Sec, v.Msg)
}

// As extracts a *Violation from an error chain.
func As(err error) (*Violation, bool) {
	var v *Violation
	if errors.As(err, &v) {
		return v, true
	}
	return nil, false
}

// Snapshot is the scalar state summary attached to every violation.
type Snapshot struct {
	Omega        float64
	Gamma        float64
	CostUSD      float64
	Backlog      float64
	VMs          int
	UsedCores    int
	Crashes      int
	Preemptions  int
	LostMessages float64
}

// snapshot reduces a State to its headline scalars.
func snapshot(st *State) Snapshot {
	s := Snapshot{
		Omega:        st.Omega,
		Gamma:        st.Gamma,
		CostUSD:      st.CostUSD,
		Backlog:      st.Backlog,
		Crashes:      st.Crashes,
		Preemptions:  st.Preemptions,
		LostMessages: st.LostMessages,
	}
	for _, vm := range st.VMs {
		if !vm.Stopped {
			s.VMs++
			s.UsedCores += vm.UsedCores
		}
	}
	return s
}

// Law is one named invariant: Check returns "" when the state satisfies it,
// or a message describing the violated relation.
type Law struct {
	Name  string
	Check func(st *State, eps float64) string
}

// Checker evaluates a set of laws against every step's state and records
// the violations. The zero value is usable: DefaultEpsilon, lenient (record
// and continue), all default laws. A Checker belongs to one engine; it is
// internally locked so observers may read counts while a run is stepping.
type Checker struct {
	// Epsilon is the conservation tolerance (<= 0 means DefaultEpsilon).
	Epsilon float64
	// Strict aborts the run at the first violation: the engine returns the
	// Violation from Run/RunContext. Lenient checkers record violations
	// (and the engine traces them) but let the run continue.
	Strict bool
	// Laws overrides the law set; nil means DefaultLaws().
	Laws []Law

	mu         sync.Mutex
	violations []Violation
	assigned   []int // scratch: per-VM cores summed from placements
}

// New returns a lenient checker with the default laws.
func New() *Checker { return &Checker{} }

// NewStrict returns a checker that aborts the run on the first violation.
func NewStrict() *Checker { return &Checker{Strict: true} }

// Check evaluates every law against st, records each violation, and returns
// the first one found this step (nil when the state is clean).
func (c *Checker) Check(st *State) *Violation {
	eps := c.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	laws := c.Laws
	if laws == nil {
		laws = defaultLaws
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var first *Violation
	for _, law := range laws {
		msg := law.Check(st, eps)
		if msg == "" {
			continue
		}
		c.violations = append(c.violations, Violation{
			Law: law.Name, Sec: st.Sec, Msg: msg, Snapshot: snapshot(st)})
		if first == nil {
			first = &c.violations[len(c.violations)-1]
		}
	}
	return first
}

// Count reports how many violations have been recorded.
func (c *Checker) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.violations)
}

// Violations returns a copy of the recorded violations in step order.
func (c *Checker) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Violation(nil), c.violations...)
}

// Reset clears recorded violations (for checker reuse across runs in
// tests; engines built via scenario get a fresh checker each).
func (c *Checker) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.violations = c.violations[:0]
}
