package invariant

import "fmt"

// Law names, one per conservation-style family the checker asserts. The
// formulas and rationale are catalogued in DESIGN.md ("Invariant catalog").
const (
	LawConservation = "message-conservation"
	LawQueues       = "non-negative-queues"
	LawBilling      = "billing-monotonicity"
	LawFleet        = "fleet-accounting"
	LawBounds       = "omega-gamma-bounds"
	LawAudit        = "audit-consistency"
)

// defaultLaws is the shared immutable law set.
var defaultLaws = []Law{
	{LawConservation, checkConservation},
	{LawQueues, checkQueues},
	{LawBilling, checkBilling},
	{LawFleet, checkFleet},
	{LawBounds, checkBounds},
	{LawAudit, checkAudit},
}

// DefaultLaws returns a fresh copy of the default law set, for callers that
// want to extend or subset it.
func DefaultLaws() []Law { return append([]Law(nil), defaultLaws...) }

// checkConservation asserts per-PE queue balance: everything that arrived
// at a PE this interval was either processed or is still queued —
// QueueBefore + In*dt = Processed*dt + QueueAfter, within a relative
// epsilon. Link-capacity drops happen in transit between PEs (they reduce
// the downstream PE's In), so the balance holds exactly at every PE up to
// the engine's sub-nanomessage queue clamp.
func checkConservation(st *State, eps float64) string {
	dt := float64(st.IntervalSec)
	for pe := range st.In {
		in := st.QueueBefore[pe] + st.In[pe]*dt
		out := st.Processed[pe]*dt + st.QueueAfter[pe]
		scale := 1 + in
		if diff := in - out; diff > eps*scale || diff < -eps*scale {
			return fmt.Sprintf("PE %d: arrivals %.6f + queued %.6f != processed %.6f + queued' %.6f (residual %.3g)",
				pe, st.In[pe]*dt, st.QueueBefore[pe], st.Processed[pe]*dt, st.QueueAfter[pe], diff)
		}
	}
	return ""
}

// checkQueues asserts no buffer ever goes negative: every per-VM queue
// cell, every per-PE total, the global backlog, and the cumulative
// lost/migrated tallies.
func checkQueues(st *State, eps float64) string {
	if st.MinQueue < -eps {
		return fmt.Sprintf("a per-VM queue cell is negative: %v", st.MinQueue)
	}
	for pe, q := range st.QueueAfter {
		if q < -eps {
			return fmt.Sprintf("PE %d queue is negative: %v", pe, q)
		}
	}
	if st.Backlog < -eps {
		return fmt.Sprintf("total backlog is negative: %v", st.Backlog)
	}
	if st.LostMessages < -eps {
		return fmt.Sprintf("lost-message tally is negative: %v", st.LostMessages)
	}
	if st.MigratedBytes < -eps {
		return fmt.Sprintf("migrated-bytes tally is negative: %v", st.MigratedBytes)
	}
	return ""
}

// checkBilling asserts μ never decreases, equals the sum of per-VM accrued
// cost, and that pending VMs — still provisioning, or cancelled before they
// ever booted — are never billed (§4's hour-boundary model bills only from
// the end of provisioning).
func checkBilling(st *State, eps float64) string {
	if st.CostUSD < -eps {
		return fmt.Sprintf("cumulative cost is negative: %v", st.CostUSD)
	}
	if st.CostUSD < st.PrevCostUSD-eps*(1+st.PrevCostUSD) {
		return fmt.Sprintf("cost decreased: %v -> %v", st.PrevCostUSD, st.CostUSD)
	}
	sum := 0.0
	for _, vm := range st.VMs {
		if vm.Pending && vm.BilledUSD != 0 {
			return fmt.Sprintf("pending VM %d billed $%v", vm.ID, vm.BilledUSD)
		}
		if vm.BilledUSD < 0 {
			return fmt.Sprintf("VM %d billed negative $%v", vm.ID, vm.BilledUSD)
		}
		sum += vm.BilledUSD
	}
	if diff := st.CostUSD - sum; diff > eps*(1+sum) || diff < -eps*(1+sum) {
		return fmt.Sprintf("cost %v != sum of per-VM bills %v", st.CostUSD, sum)
	}
	return ""
}

// checkFleet asserts core accounting: no VM oversubscribed beyond its rated
// cores, every placement references a live (non-stopped) VM with a positive
// core count, and each VM's UsedCores equals the sum of its placements.
func checkFleet(st *State, _ float64) string {
	byID := make(map[int]int, len(st.VMs))
	for i, vm := range st.VMs {
		byID[vm.ID] = i
		if vm.UsedCores < 0 {
			return fmt.Sprintf("VM %d has negative used cores %d", vm.ID, vm.UsedCores)
		}
		if vm.UsedCores > vm.RatedCores {
			return fmt.Sprintf("VM %d oversubscribed: %d used > %d rated cores", vm.ID, vm.UsedCores, vm.RatedCores)
		}
	}
	assigned := make([]int, len(st.VMs))
	for _, p := range st.Placements {
		if p.Cores <= 0 {
			return fmt.Sprintf("PE %d holds a non-positive placement of %d cores on VM %d", p.PE, p.Cores, p.VM)
		}
		i, ok := byID[p.VM]
		if !ok {
			return fmt.Sprintf("PE %d placed on unknown VM %d", p.PE, p.VM)
		}
		if st.VMs[i].Stopped {
			return fmt.Sprintf("PE %d placed on stopped VM %d", p.PE, p.VM)
		}
		assigned[i] += p.Cores
	}
	for i, vm := range st.VMs {
		if assigned[i] != vm.UsedCores {
			return fmt.Sprintf("VM %d: %d cores placed vs %d used", vm.ID, assigned[i], vm.UsedCores)
		}
	}
	return ""
}

// checkBounds asserts the paper's definitional ranges: Ω ∈ [0,1] (Def. 4 is
// a clamped ratio) and Γ within the value range of the graph's alternates
// (RoutedValue is a mean of per-PE alternate values).
func checkBounds(st *State, eps float64) string {
	if st.Omega < -eps || st.Omega > 1+eps {
		return fmt.Sprintf("omega %v outside [0,1]", st.Omega)
	}
	if st.GammaMax >= st.GammaMin {
		if st.Gamma < st.GammaMin-eps || st.Gamma > st.GammaMax+eps {
			return fmt.Sprintf("gamma %v outside alternate value range [%v, %v]",
				st.Gamma, st.GammaMin, st.GammaMax)
		}
	}
	for i, o := range st.TenantOmega {
		if o < -eps || o > 1+eps {
			return fmt.Sprintf("tenant %d omega %v outside [0,1]", i, o)
		}
	}
	return ""
}

// checkAudit asserts the crash bookkeeping and the audit event stream stay
// in step: the counters are incremented where VMs die, the events are
// tallied on the audit path, and the two views must agree every interval.
func checkAudit(st *State, _ float64) string {
	if st.Crashes < 0 || st.Preemptions < 0 {
		return fmt.Sprintf("negative crash counters: crashes=%d preemptions=%d", st.Crashes, st.Preemptions)
	}
	if st.Preemptions > st.Crashes {
		return fmt.Sprintf("%d preemptions exceed %d total crashes", st.Preemptions, st.Crashes)
	}
	if st.CrashEvents != st.Crashes-st.Preemptions {
		return fmt.Sprintf("%d crash events recorded for %d non-preemption crashes",
			st.CrashEvents, st.Crashes-st.Preemptions)
	}
	if st.PreemptEvents != st.Preemptions {
		return fmt.Sprintf("%d preempt events recorded for %d preemptions", st.PreemptEvents, st.Preemptions)
	}
	return ""
}
