// Runtime: execute a dynamic dataflow for real — not simulated — with the
// in-process floe runtime (§5's execution framework). A log-analytics
// pipeline tokenizes messages and classifies them with either a precise or
// a fast alternate; mid-stream, the controller hot-swaps the alternate and
// scales the worker pool, exactly the two control knobs the paper's
// heuristics pull, while messages keep flowing.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"dynamicdf"
)

func main() {
	log.SetFlags(0)

	g := dynamicdf.NewBuilder().
		AddPE("ingest", dynamicdf.Alt("raw", 1, 0.1, 1)).
		AddPE("classify",
			dynamicdf.Alt("precise", 1.0, 1.0, 1),
			dynamicdf.Alt("fast", 0.8, 0.3, 1)).
		AddPE("report", dynamicdf.Alt("fmt", 1, 0.1, 1)).
		Chain("ingest", "classify", "report").
		MustBuild()

	// Executable implementations for every alternate.
	classify := func(how string, slow time.Duration) dynamicdf.Impl {
		return dynamicdf.Impl{
			Name: how,
			New: func() dynamicdf.Operator {
				return dynamicdf.OperatorFunc(func(p any) ([]any, error) {
					time.Sleep(slow) // emulate model cost
					line := p.(string)
					level := "info"
					if strings.Contains(line, "error") {
						level = "error"
					}
					return []any{fmt.Sprintf("[%s/%s] %s", level, how, line)}, nil
				})
			},
		}
	}
	rt, err := dynamicdf.NewRuntime(dynamicdf.RuntimeConfig{
		Graph: g,
		Impls: map[int][]dynamicdf.Impl{
			0: {{Name: "raw", New: func() dynamicdf.Operator {
				return dynamicdf.OperatorFunc(func(p any) ([]any, error) {
					return []any{strings.TrimSpace(p.(string))}, nil
				})
			}}},
			1: {classify("precise", 2*time.Millisecond), classify("fast", 200*time.Microsecond)},
			2: {{Name: "fmt", New: func() dynamicdf.Operator {
				return dynamicdf.OperatorFunc(func(p any) ([]any, error) {
					return []any{p}, nil
				})
			}}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := rt.Subscribe(2)
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()

	lines := []string{
		"GET /index.html 200",
		"POST /login 500 error: bad credentials",
		"GET /metrics 200",
		"PUT /config 403 error: forbidden",
	}

	// Phase 1: precise alternate, single worker.
	for _, l := range lines {
		if err := rt.Ingest(0, l); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("phase 1 — precise alternate, 1 worker:")
	for range lines {
		fmt.Println(" ", (<-out).Payload)
	}

	// Phase 2: load spike — the controller switches to the cheap
	// alternate and widens the worker pool (scale up + alternate swap).
	if err := rt.SwitchAlternate(1, 1); err != nil {
		log.Fatal(err)
	}
	if err := rt.SetParallelism(1, 4); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	const burst = 400
	go func() {
		for i := 0; i < burst; i++ {
			_ = rt.Ingest(0, fmt.Sprintf("GET /item/%d 200", i))
		}
	}()
	for i := 0; i < burst; i++ {
		<-out
	}
	fmt.Printf("\nphase 2 — fast alternate, 4 workers: %d messages in %v\n",
		burst, time.Since(start).Round(time.Millisecond))

	st, _ := rt.Stats(1)
	fmt.Printf("classify stats: in=%d out=%d errors=%d workers=%d alternate=%d\n",
		st.In, st.Out, st.Errors, st.Workers, st.Alternate)

	// Phase 3: hand control to the live feedback controller — it scales
	// pools with queue pressure and manages alternates automatically, the
	// paper's control loop over real messages.
	_ = rt.SetParallelism(1, 1)
	_ = rt.SwitchAlternate(1, 0) // back to precise; let the controller cope
	ctrl, err := dynamicdf.NewController(rt, dynamicdf.ControllerConfig{
		Interval:        5 * time.Millisecond,
		MaxWorkersPerPE: 4,
		Dynamic:         true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = ctrl.Run(ctx) }()

	start = time.Now()
	go func() {
		for i := 0; i < burst; i++ {
			_ = rt.Ingest(0, fmt.Sprintf("GET /page/%d 200", i))
		}
	}()
	actions := map[string]int{}
	done := make(chan struct{})
	go func() {
		for i := 0; i < burst; i++ {
			<-out
		}
		close(done)
	}()
collect:
	for {
		select {
		case d := <-ctrl.Decisions():
			actions[d.Action]++
		case <-done:
			break collect
		}
	}
	st, _ = rt.Stats(1)
	fmt.Printf("\nphase 3 — controller-managed: %d messages in %v; decisions: %v; workers=%d alternate=%d\n",
		burst, time.Since(start).Round(time.Millisecond), actions, st.Workers, st.Alternate)
}
