// Calibration as a digital twin: observe a running system, fit the
// simulator to what was observed, and validate that the fitted simulator
// reproduces the observed run within per-metric tolerances.
//
// The "observed system" here is itself a simulation (so the demo is
// self-contained and deterministic), but the artifacts it leaves behind —
// per-VM CPU coefficient traces and per-interval run metrics — are exactly
// what a real deployment would leave: trace CSVs and /metrics scrapes. The
// calibration loop never peeks at the true parameters; it works purely from
// those artifacts:
//
//  1. Fit the CPU-variability generator from the observed trace pool
//     (OU mean/reversion/variance, regime shifts, diurnal swing).
//  2. Fit the input-rate profile from the observed metrics points.
//  3. Write both into a scenario and validate it against the observed run.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"dynamicdf"
)

// The scenario whose run we pretend to have observed: a 3-stage pipeline
// under a 30-minute input wave on a cloud with replayed CPU variability.
const observedSystem = `{
  "graph": {
    "pes": [
      {"name": "ingest", "alternates": [{"name": "only", "value": 1, "cost": 0.25, "selectivity": 1}]},
      {"name": "analyze", "alternates": [
        {"name": "deep", "value": 1.0, "cost": 1.4, "selectivity": 1},
        {"name": "fast", "value": 0.8, "cost": 0.9, "selectivity": 1}
      ]},
      {"name": "sink", "alternates": [{"name": "only", "value": 1, "cost": 0.35, "selectivity": 1}]}
    ],
    "edges": [["ingest", "analyze"], ["analyze", "sink"]]
  },
  "rate": {"kind": "wave", "mean": 10, "amplitude": 4, "periodSec": 1800},
  "infra": {"kind": "replayed", "seed": 42},
  "horizonHours": 4
}`

func parse() *dynamicdf.Scenario {
	sc, err := dynamicdf.ParseScenario(strings.NewReader(observedSystem))
	if err != nil {
		log.Fatal(err)
	}
	return sc
}

func main() {
	log.SetFlags(0)

	// --- The observed system runs and leaves artifacts behind. ---
	built, err := parse().Build()
	if err != nil {
		log.Fatal(err)
	}
	sum, err := built.Engine.Run(built.Scheduler)
	if err != nil {
		log.Fatal(err)
	}
	observedPoints := built.Engine.Collector().Points()
	fmt.Printf("observed system: %s\n", sum)

	// Its datacenter-side artifact: per-VM CPU coefficient traces. (In a
	// real deployment these come from monitoring agents; here we sample the
	// same generator population the replayed provider draws from.)
	gen := defaultCPU()
	var tracePool []*dynamicdf.TraceSeries
	for seed := int64(1); seed <= 4; seed++ {
		s, err := gen.Generate(rand.New(rand.NewSource(seed)), 5760)
		if err != nil {
			log.Fatal(err)
		}
		tracePool = append(tracePool, s)
	}

	// --- Calibration: fit generator + rate purely from the artifacts. ---
	fit, err := dynamicdf.Calibrate(tracePool, dynamicdf.TraceGenConfig{Min: gen.Min, Max: gen.Max})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted cpu generator (%d series, %d samples): mean=%.4f theta=%.5f sigma=%.5f regimeProb=%.5f regimeAmp=%.4f\n",
		fit.Series, fit.Samples, fit.Config.Mean, fit.Config.Theta, fit.Config.Sigma,
		fit.Config.RegimeProb, fit.Config.RegimeAmp)

	rate, err := dynamicdf.FitRateProfile(observedPoints)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted input rate: kind=%s mean=%.3f amplitude=%.3f periodSec=%d\n",
		rate.Kind, rate.Mean, rate.Amplitude, rate.PeriodSec)

	// --- The digital twin: the fitted scenario, validated. ---
	fitted := parse()
	fitted.Rate = rate
	fitted.Infra.CPU = dynamicdf.ScenarioGenSpecFrom(fit.Config)

	report, err := dynamicdf.Validate(fitted, observedPoints, dynamicdf.DefaultCalibrationTolerances())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(report.Table())
	if !report.Pass {
		log.Fatal("digital twin rejected")
	}
}

// defaultCPU is the CPU-variability population of the observed datacenter.
// The calibration loop receives only its samples (and the physical bounds),
// never these parameters.
func defaultCPU() dynamicdf.TraceGenConfig {
	return dynamicdf.TraceGenConfig{
		Mean: 0.82, Theta: 0.004, Sigma: 0.0045,
		RegimeProb: 0.003, RegimeAmp: 0.25, DiurnalAmp: 0.04,
		Min: 0.45, Max: 1.0, PeriodSec: 60,
	}
}
