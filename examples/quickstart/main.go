// Quickstart: build the paper's Fig. 1 dynamic dataflow, run it for two
// simulated hours on an elastic cloud with the global adaptive heuristic,
// and print the QoS / cost outcome.
package main

import (
	"fmt"
	"log"

	"dynamicdf"
)

func main() {
	log.SetFlags(0)

	// The Fig. 1 abstract dataflow: E1 fans out to E2 and E3 (each with a
	// precise and a cheap alternate), E4 merges.
	g := dynamicdf.Fig1Graph()

	// The user's optimization problem (§6): throughput constraint 0.7 and
	// a cost/value equivalence derived from what they would pay at the
	// extremes (the paper's §8.2 calibration at 5 msg/s over 2 hours).
	obj, err := dynamicdf.PaperSigma(g, 5, 2)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's contribution: the global heuristic with application
	// dynamism and runtime adaptation.
	policy, err := dynamicdf.NewHeuristic(dynamicdf.Options{
		Strategy:  dynamicdf.Global,
		Dynamic:   true,
		Adaptive:  true,
		Objective: obj,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A 5 msg/s stream arriving at the input PE, on a cloud whose VM
	// performance wobbles like the paper's FutureGrid traces.
	profile, err := dynamicdf.NewConstant(5)
	if err != nil {
		log.Fatal(err)
	}
	perf, err := dynamicdf.NewReplayedCloud(dynamicdf.ReplayedConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	engine, err := dynamicdf.NewEngine(dynamicdf.Config{
		Graph:      g,
		Menu:       dynamicdf.MustMenu(dynamicdf.AWS2013Classes()),
		Perf:       perf,
		Inputs:     map[int]dynamicdf.Profile{g.Inputs()[0]: profile},
		HorizonSec: 2 * 3600,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	summary, err := engine.Run(policy)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("dataflow:   ", g)
	fmt.Println("summary:    ", summary)
	fmt.Printf("constraint:  omega >= %.2f -> %v\n", obj.OmegaHat, obj.MeetsConstraint(summary.MeanOmega))
	fmt.Printf("objective:   theta = %.4f (gamma %.3f - sigma %.5f x $%.2f)\n",
		obj.Theta(summary.MeanGamma, summary.TotalCostUSD),
		summary.MeanGamma, obj.Sigma, summary.TotalCostUSD)

	// Peek at the adaptation trajectory: fleet size every 30 minutes.
	fmt.Println("\ntime   omega  gamma  VMs  cost($)")
	for _, p := range engine.Collector().Points() {
		if p.Sec%1800 == 0 {
			fmt.Printf("%5dm  %.3f  %.3f  %3d  %6.2f\n",
				p.Sec/60, p.Omega, p.Gamma, p.ActiveVMs, p.CostUSD)
		}
	}
}
