// Spot market: run the evaluation dataflow on a cloud offering preemptible
// twins of every VM class at 30% of the on-demand price. The global
// heuristic keeps each PE's constraint-critical base on on-demand capacity
// and spills headroom onto the spot market; preempted headroom is replaced
// within an adaptation interval, so the QoS constraint survives while the
// bill shrinks — elasticity, alternates and market tiering as three
// coordinated control dimensions.
package main

import (
	"fmt"
	"log"

	"dynamicdf"
)

func run(useSpot bool) (dynamicdf.Summary, int, error) {
	g := dynamicdf.EvalGraph()
	obj, err := dynamicdf.PaperSigma(g, 20, 8)
	if err != nil {
		return dynamicdf.Summary{}, 0, err
	}
	policy, err := dynamicdf.NewHeuristic(dynamicdf.Options{
		Strategy:  dynamicdf.Global,
		Dynamic:   true,
		Adaptive:  true,
		Objective: obj,
		UseSpot:   useSpot,
	})
	if err != nil {
		return dynamicdf.Summary{}, 0, err
	}
	profile, err := dynamicdf.NewWave(20, 8, 1800)
	if err != nil {
		return dynamicdf.Summary{}, 0, err
	}
	perf, err := dynamicdf.NewReplayedCloud(dynamicdf.ReplayedConfig{Seed: 17})
	if err != nil {
		return dynamicdf.Summary{}, 0, err
	}
	engine, err := dynamicdf.NewEngine(dynamicdf.Config{
		Graph: g,
		Menu: dynamicdf.MustMenu(
			dynamicdf.WithSpotMarket(dynamicdf.AWS2013Classes(), 0.3)),
		Perf:       perf,
		Inputs:     map[int]dynamicdf.Profile{g.Inputs()[0]: profile},
		HorizonSec: 8 * 3600,
		Seed:       9,
		// Spot reclamations arrive with a 1-hour mean lifetime.
		Preemption: dynamicdf.ExponentialFailures{MTBFSec: 3600, Seed: 9},
	})
	if err != nil {
		return dynamicdf.Summary{}, 0, err
	}
	sum, err := engine.Run(policy)
	return sum, engine.Preemptions(), err
}

func main() {
	log.SetFlags(0)
	onDemand, _, err := run(false)
	if err != nil {
		log.Fatal(err)
	}
	spot, preemptions, err := run(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on-demand only:  omega=%.3f cost=$%.2f\n", onDemand.MeanOmega, onDemand.TotalCostUSD)
	fmt.Printf("with spot spill: omega=%.3f cost=$%.2f through %d preemptions\n",
		spot.MeanOmega, spot.TotalCostUSD, preemptions)
	if spot.TotalCostUSD < onDemand.TotalCostUSD {
		fmt.Printf("\nspot spilling saved %.1f%% of the bill without giving up the constraint\n",
			100*(onDemand.TotalCostUSD-spot.TotalCostUSD)/onDemand.TotalCostUSD)
	}
}
