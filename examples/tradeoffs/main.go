// Trade-offs: sweep the user-controllable knobs of the optimization
// problem (§6) — the throughput constraint OmegaHat and the cost/value
// equivalence sigma — and show how the global heuristic trades application
// value, dollars and throughput against each other. This is the "flexible
// cost-benefit trade-offs" capability the paper argues current systems
// lack.
package main

import (
	"fmt"
	"log"

	"dynamicdf"
)

func run(g *dynamicdf.Graph, obj dynamicdf.Objective) (dynamicdf.Summary, error) {
	profile, err := dynamicdf.NewWave(15, 6, 1800)
	if err != nil {
		return dynamicdf.Summary{}, err
	}
	policy, err := dynamicdf.NewHeuristic(dynamicdf.Options{
		Strategy:  dynamicdf.Global,
		Dynamic:   true,
		Adaptive:  true,
		Objective: obj,
	})
	if err != nil {
		return dynamicdf.Summary{}, err
	}
	perf, err := dynamicdf.NewReplayedCloud(dynamicdf.ReplayedConfig{Seed: 19})
	if err != nil {
		return dynamicdf.Summary{}, err
	}
	engine, err := dynamicdf.NewEngine(dynamicdf.Config{
		Graph:      g,
		Menu:       dynamicdf.MustMenu(dynamicdf.AWS2013Classes()),
		Perf:       perf,
		Inputs:     map[int]dynamicdf.Profile{g.Inputs()[0]: profile},
		HorizonSec: 4 * 3600,
		Seed:       2,
	})
	if err != nil {
		return dynamicdf.Summary{}, err
	}
	return engine.Run(policy)
}

func main() {
	log.SetFlags(0)
	g := dynamicdf.EvalGraph()

	base, err := dynamicdf.PaperSigma(g, 15, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sweep 1: tightening the throughput constraint (sigma fixed)")
	fmt.Println("omegaHat  omega   gamma   cost($)  theta")
	for _, oh := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		obj := base
		obj.OmegaHat = oh
		sum, err := run(g, obj)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %.2f    %.3f   %.3f   %6.2f   %+.4f\n",
			oh, sum.MeanOmega, sum.MeanGamma, sum.TotalCostUSD,
			obj.Theta(sum.MeanGamma, sum.TotalCostUSD))
	}

	fmt.Println()
	fmt.Println("sweep 2: how much the user values dollars (omegaHat fixed at 0.7)")
	fmt.Println("(the heuristics' decisions are value/cost-ratio driven, as in the")
	fmt.Println(" paper's Alg. 1-2; sigma re-prices the same execution, showing where")
	fmt.Println(" a user's expectation line turns the run from profit to loss)")
	fmt.Println("sigma-scale  omega   gamma   cost($)  theta")
	for _, scale := range []float64{0.25, 0.5, 1, 2, 4} {
		obj := base
		obj.Sigma = base.Sigma * scale
		sum, err := run(g, obj)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %5.2fx    %.3f   %.3f   %6.2f   %+.4f\n",
			scale, sum.MeanOmega, sum.MeanGamma, sum.TotalCostUSD,
			obj.Theta(sum.MeanGamma, sum.TotalCostUSD))
	}
}
