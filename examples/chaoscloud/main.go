// Chaos cloud: run the global heuristic on a cloud where everything the
// control plane promises is shaky — VMs crash (1-hour mean lifetime), spot
// capacity is preempted even faster, acquisitions fail transiently with the
// provider out of most on-demand classes, booted VMs spend minutes pending,
// and monitoring probes are dropped or noisy. The same policy runs twice:
// bare, and wrapped in the resilient middleware (retries, per-class circuit
// breaking, fallback to the next-cheapest class, graceful degradation). The
// comparison prints each run's mean relative throughput Omega-bar against
// the constraint and the objective value Theta — robustness to control-plane
// faults, not just to data and infrastructure variability.
package main

import (
	"fmt"
	"log"

	"dynamicdf"
)

type result struct {
	sum      dynamicdf.Summary
	theta    float64
	crashes  int
	failures int
	stale    int
	res      *dynamicdf.ResilientScheduler
}

func run(obj dynamicdf.Objective, resilient bool) (result, error) {
	g := dynamicdf.EvalGraph()
	policy, err := dynamicdf.NewHeuristic(dynamicdf.Options{
		Strategy:  dynamicdf.Global,
		Dynamic:   true,
		Adaptive:  true,
		Objective: obj,
		UseSpot:   true,
	})
	if err != nil {
		return result{}, err
	}
	var sched dynamicdf.Scheduler = policy
	var rs *dynamicdf.ResilientScheduler
	if resilient {
		rs = dynamicdf.WrapResilient(policy, dynamicdf.ResilientConfig{
			Seed:         7,
			DegradeOmega: obj.OmegaHat,
		})
		sched = rs
	}
	profile, err := dynamicdf.NewWave(20, 6, 1800)
	if err != nil {
		return result{}, err
	}
	engine, err := dynamicdf.NewEngine(dynamicdf.Config{
		Graph: g,
		Menu: dynamicdf.MustMenu(
			dynamicdf.WithSpotMarket(dynamicdf.AWS2013Classes(), 0.3)),
		Inputs:     map[int]dynamicdf.Profile{g.Inputs()[0]: profile},
		HorizonSec: 6 * 3600,
		Seed:       7,
		// On-demand VMs crash with a 1-hour mean lifetime; spot twins are
		// additionally reclaimed with a 30-minute mean.
		Failures:   dynamicdf.ExponentialFailures{MTBFSec: 3600, Seed: 7},
		Preemption: dynamicdf.ExponentialFailures{MTBFSec: 1800, Seed: 8},
		// The control plane itself misbehaves: minutes-long boots, the
		// provider out of most on-demand classes after the first 15 minutes,
		// and degraded monitoring.
		ControlFaults: &dynamicdf.ControlFaults{
			Provisioning: &dynamicdf.ProvisioningFaults{MeanBootSec: 60},
			Acquisition: &dynamicdf.AcquisitionFaults{
				FailProb: 0.1,
				PerClass: map[string]float64{
					"m1.medium": 0.95, "m1.large": 0.95, "m1.xlarge": 0.95,
				},
				BurstEverySec: 3600,
				BurstLenSec:   600,
				AfterSec:      900,
			},
			Monitoring: &dynamicdf.MonitoringFaults{StaleProb: 0.2, NoiseFrac: 0.1},
			Seed:       5,
		},
	})
	if err != nil {
		return result{}, err
	}
	sum, err := engine.Run(sched)
	if err != nil {
		return result{}, err
	}
	return result{
		sum:      sum,
		theta:    obj.Theta(sum.MeanGamma, sum.TotalCostUSD),
		crashes:  engine.Crashes(),
		failures: engine.AcquireFailures(),
		stale:    engine.StaleProbes(),
		res:      rs,
	}, nil
}

func main() {
	g := dynamicdf.EvalGraph()
	obj, err := dynamicdf.PaperSigma(g, 20, 6)
	if err != nil {
		log.Fatal(err)
	}

	plain, err := run(obj, false)
	if err != nil {
		log.Fatal(err)
	}
	wrapped, err := run(obj, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chaos cloud, constraint omega >= %.2f (eps %.2f)\n\n", obj.OmegaHat, obj.Epsilon)
	for _, r := range []struct {
		name string
		res  result
	}{{"plain heuristic", plain}, {"resilient wrapper", wrapped}} {
		met := "MET"
		if !obj.MeetsConstraint(r.res.sum.MeanOmega) {
			met = "MISSED"
		}
		fmt.Printf("%-18s omega=%.3f (%s)  theta=%.4f  cost=$%.2f  crashes=%d  failed-acquires=%d  stale-probes=%d\n",
			r.name, r.res.sum.MeanOmega, met, r.res.theta, r.res.sum.TotalCostUSD,
			r.res.crashes, r.res.failures, r.res.stale)
	}
	rs := wrapped.res
	fmt.Printf("\nmiddleware interventions: %d retries, %d fallbacks, %d breaker trips, %d degrade rounds\n",
		rs.Retries(), rs.Fallbacks(), rs.BreakerTrips(), rs.Degrades())
	if wrapped.sum.MeanOmega > plain.sum.MeanOmega {
		fmt.Printf("resilience recovered %.3f of mean relative throughput under identical faults\n",
			wrapped.sum.MeanOmega-plain.sum.MeanOmega)
	}
}
