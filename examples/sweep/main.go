// Sweep campaigns: the same evaluation the paper runs figure by figure,
// expressed as one declarative grid — a base scenario crossed with a
// policy axis and a rate axis, replicated over seeds — and executed on a
// bounded worker pool. Every job is content-addressed by the hash of its
// canonical scenario JSON, and completions are journaled, so the second
// Run below finishes instantly from cache: the engine re-executes only
// what is missing, which is also how a killed campaign resumes.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dynamicdf"
)

const base = `{
  "graph": {
    "pes": [
      {"name": "ingest", "alternates": [{"name": "parse", "value": 1, "cost": 0.2, "selectivity": 1}]},
      {"name": "analyze", "alternates": [
        {"name": "full", "value": 1.0, "cost": 1.0, "selectivity": 1},
        {"name": "lite", "value": 0.8, "cost": 0.5, "selectivity": 1}
      ]}
    ],
    "edges": [["ingest", "analyze"]]
  },
  "rate": {"kind": "constant", "mean": 5},
  "horizonHours": 0.5,
  "seed": 1
}`

func patch(doc string) json.RawMessage { return json.RawMessage(doc) }

func main() {
	log.SetFlags(0)
	spec := &dynamicdf.SweepSpec{
		Name: "policy-x-rate",
		Base: patch(base),
		Axes: []dynamicdf.SweepAxis{
			{Name: "policy", Values: []dynamicdf.SweepAxisValue{
				{Label: "local", Patch: patch(`{"policy": {"kind": "local"}}`)},
				{Label: "global", Patch: patch(`{"policy": {"kind": "global"}}`)},
			}},
			{Name: "rate", Values: []dynamicdf.SweepAxisValue{
				{Label: "5", Patch: patch(`{"rate": {"mean": 5}}`)},
				{Label: "20", Patch: patch(`{"rate": {"mean": 20}}`)},
			}},
		},
		Seeds: []int64{1, 2, 3},
	}

	dir, err := os.MkdirTemp("", "sweep-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	run := func() *dynamicdf.SweepReport {
		j, err := dynamicdf.OpenSweepJournal(filepath.Join(dir, "campaign.jsonl"))
		if err != nil {
			log.Fatal(err)
		}
		defer j.Close()
		eng := &dynamicdf.SweepEngine{Workers: 4, Journal: j}
		rep, err := eng.Run(context.Background(), spec)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	first := run()
	fmt.Println(first.Table())

	// Same spec, fresh engine: every job is already on the journal, so the
	// hit rate is 100% and nothing re-executes.
	second := run()
	fmt.Printf("re-run: %d cached, %d executed (hit rate %.0f%%)\n",
		second.CacheHits, second.Executed, 100*second.HitRate())
}
