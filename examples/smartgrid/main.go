// Smart grid: a continuous dataflow over smart-meter readings — the
// application domain the paper's authors build such systems for. Meter
// messages arrive at volatile rates (demand-response events cause bursts);
// the pipeline filters outliers, forecasts demand with either a full or a
// sampled model, and aggregates for a dashboard. The example compares the
// local and global heuristics under combined data + infrastructure
// variability, the comparison of the paper's Figs. 6-7.
package main

import (
	"fmt"
	"log"

	"dynamicdf"
)

func buildGrid() (*dynamicdf.Graph, error) {
	return dynamicdf.NewBuilder().
		DefaultMsgBytes(4*1024). // small telemetry records
		AddPE("meters", dynamicdf.Alt("ingest", 1, 0.1, 1)).
		AddPE("validate",
			dynamicdf.Alt("full", 1.0, 0.5, 0.95),
			dynamicdf.Alt("sampled", 0.8, 0.25, 0.95)).
		AddPE("forecast",
			dynamicdf.Alt("arima", 1.00, 2.0, 1),
			dynamicdf.Alt("ewma", 0.82, 0.9, 1),
			dynamicdf.Alt("naive", 0.60, 0.3, 1)).
		AddPE("aggregate", dynamicdf.Alt("windowed", 1, 0.3, 0.2)).
		AddPE("dashboard", dynamicdf.Alt("push", 1, 0.1, 1)).
		Connect("meters", "validate").
		Connect("validate", "forecast").
		Connect("validate", "aggregate").
		Connect("forecast", "dashboard").
		Connect("aggregate", "dashboard").
		Build()
}

func runStrategy(g *dynamicdf.Graph, strat dynamicdf.Strategy) (dynamicdf.Summary, dynamicdf.Objective, error) {
	// Meter traffic wanders around 25 msg/s (demand-response events).
	profile, err := dynamicdf.NewRandomWalk(25, 0.12, 60, 11)
	if err != nil {
		return dynamicdf.Summary{}, dynamicdf.Objective{}, err
	}
	obj, err := dynamicdf.PaperSigma(g, 25, 6)
	if err != nil {
		return dynamicdf.Summary{}, dynamicdf.Objective{}, err
	}
	policy, err := dynamicdf.NewHeuristic(dynamicdf.Options{
		Strategy:  strat,
		Dynamic:   true,
		Adaptive:  true,
		Objective: obj,
	})
	if err != nil {
		return dynamicdf.Summary{}, dynamicdf.Objective{}, err
	}
	perf, err := dynamicdf.NewReplayedCloud(dynamicdf.ReplayedConfig{Seed: 23})
	if err != nil {
		return dynamicdf.Summary{}, dynamicdf.Objective{}, err
	}
	engine, err := dynamicdf.NewEngine(dynamicdf.Config{
		Graph:      g,
		Menu:       dynamicdf.MustMenu(dynamicdf.AWS2013Classes()),
		Perf:       perf,
		Inputs:     map[int]dynamicdf.Profile{g.Inputs()[0]: profile},
		HorizonSec: 6 * 3600,
		Seed:       5,
	})
	if err != nil {
		return dynamicdf.Summary{}, dynamicdf.Objective{}, err
	}
	sum, err := engine.Run(policy)
	return sum, obj, err
}

func main() {
	log.SetFlags(0)
	g, err := buildGrid()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("smart grid dataflow:", g)
	fmt.Println()
	fmt.Println("strategy  omega   constraint  gamma   cost($)  theta")
	for _, strat := range []dynamicdf.Strategy{dynamicdf.Local, dynamicdf.Global} {
		sum, obj, err := runStrategy(g, strat)
		if err != nil {
			log.Fatal(err)
		}
		met := "met"
		if !obj.MeetsConstraint(sum.MeanOmega) {
			met = "MISSED"
		}
		fmt.Printf("%-8v  %.3f   %-9s   %.3f   %6.2f   %+.4f\n",
			strat, sum.MeanOmega, met, sum.MeanGamma, sum.TotalCostUSD,
			obj.Theta(sum.MeanGamma, sum.TotalCostUSD))
	}
}
