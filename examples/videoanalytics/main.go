// Video analytics: a surveillance pipeline of the kind the paper's
// introduction motivates — continuous camera frames flowing through
// detection and classification stages whose implementations trade accuracy
// (application value) for compute cost. The example contrasts running the
// pipeline with and without application dynamism on a cloud with realistic
// performance variability, reproducing the paper's headline: alternates cut
// dollars while holding the throughput constraint.
package main

import (
	"fmt"
	"log"

	"dynamicdf"
)

// buildPipeline constructs the surveillance dataflow:
//
//	decode ──► detect ──► track ──► classify ──► alert
//
// detect and classify each offer a precise deep model and cheaper
// approximations (value = relative F1, as the paper suggests for
// classification PEs). detect's selectivity < 1: only frames with motion
// continue downstream.
func buildPipeline() (*dynamicdf.Graph, error) {
	return dynamicdf.NewBuilder().
		DefaultMsgBytes(200*1024). // ~200 KB camera frames
		AddPE("decode", dynamicdf.Alt("ffmpeg", 1, 0.2, 1)).
		AddPE("detect",
			dynamicdf.Alt("dnn", 1.00, 2.4, 0.6),
			dynamicdf.Alt("mobilenet", 0.88, 1.5, 0.6),
			dynamicdf.Alt("haar", 0.70, 0.8, 0.6)).
		AddPE("track", dynamicdf.Alt("sort", 1, 0.4, 1)).
		AddPE("classify",
			dynamicdf.Alt("resnet", 1.00, 1.8, 1),
			dynamicdf.Alt("squeezenet", 0.85, 1.0, 1)).
		AddPE("alert", dynamicdf.Alt("rules", 1, 0.15, 1)).
		Chain("decode", "detect", "track", "classify", "alert").
		Build()
}

func run(g *dynamicdf.Graph, dynamic bool) (dynamicdf.Summary, dynamicdf.Objective, string, error) {
	// Evening-peak diurnal load: 12 frames/s mean, +-50%, 2-hour period
	// compressed for simulation.
	profile, err := dynamicdf.NewWave(12, 6, 2*3600)
	if err != nil {
		return dynamicdf.Summary{}, dynamicdf.Objective{}, "", err
	}
	obj, err := dynamicdf.PaperSigma(g, 12, 8)
	if err != nil {
		return dynamicdf.Summary{}, dynamicdf.Objective{}, "", err
	}
	policy, err := dynamicdf.NewHeuristic(dynamicdf.Options{
		Strategy:  dynamicdf.Global,
		Dynamic:   dynamic,
		Adaptive:  true,
		Objective: obj,
	})
	if err != nil {
		return dynamicdf.Summary{}, dynamicdf.Objective{}, "", err
	}
	perf, err := dynamicdf.NewReplayedCloud(dynamicdf.ReplayedConfig{Seed: 7})
	if err != nil {
		return dynamicdf.Summary{}, dynamicdf.Objective{}, "", err
	}
	engine, err := dynamicdf.NewEngine(dynamicdf.Config{
		Graph:      g,
		Menu:       dynamicdf.MustMenu(dynamicdf.AWS2013Classes()),
		Perf:       perf,
		Inputs:     map[int]dynamicdf.Profile{g.Inputs()[0]: profile},
		HorizonSec: 8 * 3600,
		Seed:       3,
	})
	if err != nil {
		return dynamicdf.Summary{}, dynamicdf.Objective{}, "", err
	}
	sum, err := engine.Run(policy)
	return sum, obj, policy.Name(), err
}

func main() {
	log.SetFlags(0)
	g, err := buildPipeline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("surveillance pipeline:", g)
	fmt.Println()

	withDyn, obj, nameDyn, err := run(g, true)
	if err != nil {
		log.Fatal(err)
	}
	noDyn, _, nameNo, err := run(g, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s omega=%.3f (>=%.2f: %v)  gamma=%.3f  cost=$%.2f  theta=%.4f\n",
		nameDyn, withDyn.MeanOmega, obj.OmegaHat, obj.MeetsConstraint(withDyn.MeanOmega),
		withDyn.MeanGamma, withDyn.TotalCostUSD, obj.Theta(withDyn.MeanGamma, withDyn.TotalCostUSD))
	fmt.Printf("%-14s omega=%.3f (>=%.2f: %v)  gamma=%.3f  cost=$%.2f  theta=%.4f\n",
		nameNo, noDyn.MeanOmega, obj.OmegaHat, obj.MeetsConstraint(noDyn.MeanOmega),
		noDyn.MeanGamma, noDyn.TotalCostUSD, obj.Theta(noDyn.MeanGamma, noDyn.TotalCostUSD))

	if noDyn.TotalCostUSD > 0 {
		fmt.Printf("\napplication dynamism saved %.1f%% of the cloud bill over 8 hours\n",
			100*(noDyn.TotalCostUSD-withDyn.TotalCostUSD)/noDyn.TotalCostUSD)
	}
}
