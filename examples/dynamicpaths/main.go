// Dynamic paths: the paper's §9 future work — alternates at the
// granularity of a whole sub-path. A fraud-screening dataflow routes
// transactions through either a precision path (feature extraction + deep
// scoring) or an economy path (rule-based screening) behind a choice port.
// When the cloud degrades and the acquisition quota blocks further
// scale-out, the global heuristic reroutes the stream onto the economy
// path, holding the throughput constraint with the surviving capacity —
// then the whole comparison is priced against never switching.
package main

import (
	"fmt"
	"log"

	"dynamicdf"
)

func buildFraudFlow() (*dynamicdf.Graph, error) {
	b := dynamicdf.NewBuilder().
		AddPE("txns", dynamicdf.Alt("ingest", 1, 0.1, 1)).
		AddPE("features", dynamicdf.Alt("full", 1.0, 1.5, 1)).
		AddPE("deepscore", dynamicdf.Alt("dnn", 1.0, 1.3, 1)).
		AddPE("rules", dynamicdf.Alt("rete", 0.72, 0.45, 1)).
		AddPE("decide", dynamicdf.Alt("threshold", 1, 0.1, 1))
	b.AddChoice("screening", "txns", "features", "rules")
	return b.Connect("features", "deepscore").
		Connect("deepscore", "decide").
		Connect("rules", "decide").
		Build()
}

func run(g *dynamicdf.Graph, dynamic bool) (dynamicdf.Summary, dynamicdf.Routing, error) {
	obj, err := dynamicdf.PaperSigma(g, 25, 6)
	if err != nil {
		return dynamicdf.Summary{}, nil, err
	}
	policy, err := dynamicdf.NewHeuristic(dynamicdf.Options{
		Strategy:  dynamicdf.Global,
		Dynamic:   dynamic,
		Adaptive:  true,
		Objective: obj,
	})
	if err != nil {
		return dynamicdf.Summary{}, nil, err
	}
	prof, err := dynamicdf.NewConstant(25)
	if err != nil {
		return dynamicdf.Summary{}, nil, err
	}
	// A badly oversubscribed cloud delivering ~55% of rated performance,
	// with a tight acquisition quota: elasticity alone cannot absorb the
	// shortfall, which is exactly when path-granularity dynamism pays.
	perf, err := dynamicdf.NewReplayedCloud(dynamicdf.ReplayedConfig{
		Seed: 31,
		CPU: dynamicdf.TraceGenConfig{
			Mean: 0.55, Theta: 0.004, Sigma: 0.004,
			RegimeProb: 0.003, RegimeAmp: 0.1, DiurnalAmp: 0.02,
			Min: 0.40, Max: 0.70, PeriodSec: 60,
		},
	})
	if err != nil {
		return dynamicdf.Summary{}, nil, err
	}
	engine, err := dynamicdf.NewEngine(dynamicdf.Config{
		Graph:      g,
		Menu:       dynamicdf.MustMenu(dynamicdf.AWS2013Classes()),
		Perf:       perf,
		Inputs:     map[int]dynamicdf.Profile{g.Inputs()[0]: prof},
		HorizonSec: 6 * 3600,
		MaxVMs:     12,
		Seed:       4,
	})
	if err != nil {
		return dynamicdf.Summary{}, nil, err
	}
	sum, err := engine.Run(policy)
	return sum, dynamicdf.NewView(engine).Routing(), err
}

func main() {
	log.SetFlags(0)
	g, err := buildFraudFlow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fraud-screening dataflow:", g)
	fmt.Println()

	withPaths, routing, err := run(g, true)
	if err != nil {
		log.Fatal(err)
	}
	pinned, _, err := run(g, false)
	if err != nil {
		log.Fatal(err)
	}

	active := g.Choices[0].Targets[routing[0]]
	fmt.Printf("dynamic:  omega=%.3f gamma=%.3f cost=$%.2f — active route: %s\n",
		withPaths.MeanOmega, withPaths.MeanGamma, withPaths.TotalCostUSD, g.PEs[active].Name)
	fmt.Printf("pinned:   omega=%.3f gamma=%.3f cost=$%.2f — precision path always\n",
		pinned.MeanOmega, pinned.MeanGamma, pinned.TotalCostUSD)
	fmt.Println()
	if withPaths.MeanOmega > pinned.MeanOmega {
		fmt.Printf("dynamic paths held +%.0f%% more throughput under the degraded, quota-capped cloud\n",
			100*(withPaths.MeanOmega-pinned.MeanOmega)/pinned.MeanOmega)
	}
}
