// Multi-tenant fleets: three dataflows — a high-priority alerting pipeline,
// an analytics pipeline, and a session-driven user-facing app — share one
// elastic VM fleet. Each tenant gets its own adaptive heuristic and Ω floor;
// a fairness arbiter decides who may still scale up once the fleet runs
// scarce. The whole setup is declared as a scenario JSON tenants block, the
// same schema cmd/dfsim and sweeps consume.
package main

import (
	"fmt"
	"log"
	"strings"

	"dynamicdf"
)

const scenarioJSON = `{
  "tenants": [
    {
      "name": "alerts",
      "priority": 2,
      "omegaFloor": 0.9,
      "graph": {
        "pes": [
          {"name": "ingest", "alternates": [{"name": "e", "value": 1, "cost": 0.2, "selectivity": 1}]},
          {"name": "match", "alternates": [
            {"name": "exact", "value": 1.0, "cost": 0.8, "selectivity": 1},
            {"name": "bloom", "value": 0.85, "cost": 0.4, "selectivity": 1}
          ]}
        ],
        "edges": [["ingest", "match"]]
      },
      "rate": {"kind": "constant", "mean": 4}
    },
    {
      "name": "analytics",
      "graph": {
        "pes": [
          {"name": "ingest", "alternates": [{"name": "e", "value": 1, "cost": 0.2, "selectivity": 1}]},
          {"name": "aggregate", "alternates": [
            {"name": "full", "value": 1.0, "cost": 1.0, "selectivity": 1},
            {"name": "sampled", "value": 0.8, "cost": 0.5, "selectivity": 1}
          ]}
        ],
        "edges": [["ingest", "aggregate"]]
      },
      "rate": {"kind": "wave", "mean": 6, "amplitude": 2, "periodSec": 1800}
    },
    {
      "name": "app",
      "omegaFloor": 0.7,
      "graph": {
        "pes": [
          {"name": "sessions", "alternates": [{"name": "e", "value": 1, "cost": 0.2, "selectivity": 1}]},
          {"name": "render", "alternates": [
            {"name": "rich", "value": 1.0, "cost": 0.7, "selectivity": 1},
            {"name": "plain", "value": 0.75, "cost": 0.35, "selectivity": 1}
          ]}
        ],
        "edges": [["sessions", "render"]]
      },
      "rate": {
        "kind": "sessions",
        "seed": 7,
        "sessions": {
          "model": "open",
          "arrivalPerSec": 0.03,
          "meanSessionSec": 600,
          "msgPerSessionSec": 0.3,
          "diurnal": 0.4,
          "flashProb": 0.0002,
          "flashFactor": 4,
          "flashSec": 900
        }
      }
    }
  ],
  "horizonHours": 2,
  "maxVMs": 9,
  "seed": 1,
  "audit": true
}`

func main() {
	log.SetFlags(0)

	sc, err := dynamicdf.ParseScenario(strings.NewReader(scenarioJSON))
	if err != nil {
		log.Fatal(err)
	}
	built, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composite dataflow: %d PEs across %d tenants, policy %s\n",
		built.Graph.N(), len(built.TenantNames), built.Scheduler.Name())

	sum, err := built.Engine.Run(built.Scheduler)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %s\n", sum)
	for i, ts := range sum.Tenants {
		obj := built.TenantObjectives[i]
		verdict := "met"
		if !obj.MeetsConstraint(ts.MeanOmega) {
			verdict = "MISSED"
		}
		fmt.Printf("tenant %-10s omega=%.3f (min %.3f, floor %.2f %s)  gamma=%.3f  spend=$%.2f\n",
			ts.Name, ts.MeanOmega, ts.MinOmega, built.Config.Tenants[i].OmegaFloor,
			verdict, ts.MeanGamma, ts.SpendUSD)
	}

	// Every fair-share ruling the arbiter took is on the audit log, so a
	// denied scale-up is always explainable.
	rulings := 0
	for _, entry := range built.Engine.AuditLog() {
		if entry.Decision != nil && entry.Decision.Kind == "fair-share" {
			rulings++
		}
	}
	fmt.Printf("fair-share rulings under scarcity: %d\n", rulings)
}
