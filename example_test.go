package dynamicdf_test

import (
	"fmt"

	"dynamicdf"
)

// Example_simulate runs the paper's Fig. 1 dataflow for one simulated hour
// under the global adaptive heuristic on an ideal cloud and reports the
// QoS outcome.
func Example_simulate() {
	g := dynamicdf.Fig1Graph()
	obj, err := dynamicdf.PaperSigma(g, 5, 1)
	if err != nil {
		panic(err)
	}
	policy, err := dynamicdf.NewHeuristic(dynamicdf.Options{
		Strategy:  dynamicdf.Global,
		Dynamic:   true,
		Adaptive:  true,
		Objective: obj,
	})
	if err != nil {
		panic(err)
	}
	profile, err := dynamicdf.NewConstant(5)
	if err != nil {
		panic(err)
	}
	engine, err := dynamicdf.NewEngine(dynamicdf.Config{
		Graph:      g,
		Menu:       dynamicdf.MustMenu(dynamicdf.AWS2013Classes()),
		Inputs:     map[int]dynamicdf.Profile{0: profile},
		HorizonSec: 3600,
	})
	if err != nil {
		panic(err)
	}
	sum, err := engine.Run(policy)
	if err != nil {
		panic(err)
	}
	fmt.Printf("constraint met: %v\n", obj.MeetsConstraint(sum.MeanOmega))
	fmt.Printf("cost: $%.2f\n", sum.TotalCostUSD)
	// Output:
	// constraint met: true
	// cost: $0.66
}

// ExampleObjective shows the §6 profit objective: value minus priced
// dollars, with sigma derived from the user's acceptable costs.
func ExampleObjective() {
	g := dynamicdf.Fig1Graph()
	sigma, err := dynamicdf.SigmaFromExpectations(g, 40, 10)
	if err != nil {
		panic(err)
	}
	obj := dynamicdf.Objective{OmegaHat: 0.7, Epsilon: 0.05, Sigma: sigma}
	fmt.Printf("theta at gamma 0.9, $20: %.4f\n", obj.Theta(0.9, 20))
	fmt.Printf("omega 0.66 meets 0.7-0.05: %v\n", obj.MeetsConstraint(0.66))
	// Output:
	// theta at gamma 0.9, $20: 0.8500
	// omega 0.66 meets 0.7-0.05: true
}

// ExampleWithSpotMarket adds preemptible twins to the AWS menu.
func ExampleWithSpotMarket() {
	classes := dynamicdf.WithSpotMarket(dynamicdf.AWS2013Classes(), 0.3)
	menu := dynamicdf.MustMenu(classes)
	spot, _ := menu.ByName("m1.small-spot")
	fmt.Printf("%s: $%.3f/h preemptible=%v\n", spot.Name, spot.PricePerHour, spot.Preemptible)
	// Output:
	// m1.small-spot: $0.018/h preemptible=true
}
