package dynamicdf_test

import (
	"context"
	"testing"
	"time"

	"dynamicdf"
	"dynamicdf/internal/core"
	"dynamicdf/internal/dataflow"
)

// TestCapstoneSimulatedPlanDrivesRealExecution exercises the repository's
// whole story end to end: the paper's heuristics plan alternates and
// data-parallelism against the cloud model, the plan is applied to the
// real floe runtime, real messages flow, and the realized throughput
// reflects the planned parallelism.
func TestCapstoneSimulatedPlanDrivesRealExecution(t *testing.T) {
	// 1. The application: a two-stage pipeline whose heavy stage has a
	//    precise and a fast alternate (costs in core-seconds per message).
	g := dynamicdf.NewBuilder().
		AddPE("parse", dynamicdf.Alt("only", 1, 0.05, 1)).
		AddPE("score",
			dynamicdf.Alt("precise", 1.0, 2.0, 1),
			dynamicdf.Alt("fast", 0.85, 0.8, 1)).
		AddPE("emit", dynamicdf.Alt("only", 1, 0.05, 1)).
		Chain("parse", "score", "emit").
		MustBuild()

	// 2. Plan with Alg. 1 for 12 msg/s. The menu uses standard (speed-1)
	//    cores so a planned core maps one-to-one onto a runtime worker.
	menu := dynamicdf.MustMenu([]*dynamicdf.Class{
		{Name: "c4", Cores: 4, CoreSpeed: 1, NetMbps: 100, PricePerHour: 0.10},
	})
	sel, err := core.SelectAlternates(g, core.Global)
	if err != nil {
		t.Fatal(err)
	}
	if sel[1] != 1 {
		t.Fatalf("expected the fast alternate by value/cost ratio, got %d", sel[1])
	}
	plan, err := core.PlanAllocation(g, menu, sel,
		dataflow.DefaultRouting(g), dataflow.InputRates{0: 12}, 0.95, core.Global)
	if err != nil {
		t.Fatal(err)
	}
	workers := plan.Workers(g.N())
	// 12 msg/s x 0.8 core-s x 0.95 needs >= 10 standard cores on score.
	if workers[1] < 8 {
		t.Fatalf("plan gave score %d cores — sizing broken", workers[1])
	}

	// 3. Execute for real at a compressed timescale: 1 model core-second
	//    of work = 1 real millisecond of worker time, so one worker is a
	//    1000x standard core and the planned core counts carry over.
	// Sub-0.2ms stages run unslept: Go's sleep granularity would otherwise
	// inflate the cheap stages past the heavy one and invert the
	// bottleneck the plan sized for.
	opFor := func(coreSec float64) func() dynamicdf.Operator {
		d := time.Duration(coreSec * float64(time.Millisecond))
		return func() dynamicdf.Operator {
			return dynamicdf.OperatorFunc(func(p any) ([]any, error) {
				if d >= 200*time.Microsecond {
					time.Sleep(d)
				}
				return []any{p}, nil
			})
		}
	}
	rt, err := dynamicdf.NewRuntime(dynamicdf.RuntimeConfig{
		Graph: g,
		Impls: map[int][]dynamicdf.Impl{
			0: {{Name: "only", New: opFor(0.05)}},
			1: {{Name: "precise", New: opFor(2.0)}, {Name: "fast", New: opFor(0.8)}},
			2: {{Name: "only", New: opFor(0.05)}},
		},
		QueueLen: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rt.Subscribe(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if err := rt.ApplyPlan(workers, sel); err != nil {
		t.Fatal(err)
	}
	// Give parse/emit enough width that the bottleneck stays on score as
	// planned (their planned single cores share the compressed scale).
	_ = rt.SetParallelism(0, 2)
	_ = rt.SetParallelism(2, 2)

	// 4. Offer a burst and measure the makespan. With W workers at 0.8 ms
	//    per message the theoretical floor is n*0.8/W ms; a single-worker
	//    (unplanned) deployment would need n*0.8 ms.
	const n = 1200
	go func() {
		for i := 0; i < n; i++ {
			_ = rt.Ingest(0, i)
		}
	}()
	start := time.Now()
	for i := 0; i < n; i++ {
		select {
		case <-out:
		case <-time.After(60 * time.Second):
			t.Fatalf("stalled at %d/%d", i, n)
		}
	}
	elapsed := time.Since(start)

	floor := time.Duration(float64(n)*0.8/float64(workers[1])) * time.Millisecond
	single := time.Duration(n*8/10) * time.Millisecond
	if elapsed > single/2 {
		t.Fatalf("planned parallelism did not materialize: %v elapsed vs %v single-worker bound (floor %v)",
			elapsed, single, floor)
	}

	// 5. The plan's decisions visibly took effect on the runtime.
	st, err := rt.Stats(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != workers[1] {
		t.Fatalf("score runs %d workers, plan said %d", st.Workers, workers[1])
	}
	if st.Alternate != sel[1] {
		t.Fatalf("score runs alternate %d, plan said %d", st.Alternate, sel[1])
	}
}
