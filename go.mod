module dynamicdf

go 1.22
