package dynamicdf

import (
	"testing"

	"dynamicdf/internal/binpack"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/experiments"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
	"dynamicdf/internal/trace"
)

// benchConfig keeps per-iteration cost bounded while exercising the full
// experiment code paths: a 1-hour horizon over a sparse rate sweep.
func benchConfig() experiments.Config {
	c := experiments.Quick()
	c.HorizonSec = 3600
	c.Rates = []float64{5, 20}
	return c
}

// BenchmarkFig2TraceCPUVariability regenerates the Fig. 2 CPU-variability
// characterization (four-day traces for a pool of VMs).
func BenchmarkFig2TraceCPUVariability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig2(int64(i), 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			extreme := r.Deviation.Max
			if -r.Deviation.Min > extreme {
				extreme = -r.Deviation.Min
			}
			b.ReportMetric(extreme*100, "maxRelDev%")
		}
	}
}

// BenchmarkFig3TraceNetworkVariability regenerates the Fig. 3 network
// latency/bandwidth characterization.
func BenchmarkFig3TraceNetworkVariability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig3(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Bandwidth.CoV, "bwCoV")
		}
	}
}

// BenchmarkFig4StaticUnderVariability regenerates Fig. 4: static
// deployments (brute force, local, global) under the four variability
// scenarios at 5 msg/s.
func BenchmarkFig4StaticUnderVariability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Rows[0].Summary.MeanOmega, "bf-omega-novar")
			b.ReportMetric(r.Rows[len(r.Rows)-1].Summary.MeanOmega, "global-omega-both")
		}
	}
}

// BenchmarkFig5StaticVsRate regenerates Fig. 5: static deployments across
// the data-rate sweep without variability.
func BenchmarkFig5StaticVsRate(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6AdaptiveInfraVariability regenerates Fig. 6: local vs
// global adaptive heuristics under infrastructure variability.
func BenchmarkFig6AdaptiveInfraVariability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Rows[len(r.Rows)-1].Theta, "global-theta")
		}
	}
}

// BenchmarkFig7AdaptiveDataVariability regenerates Fig. 7: local vs global
// adaptive heuristics under data-rate variability.
func BenchmarkFig7AdaptiveDataVariability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8DollarCost regenerates Fig. 8: dollars spent by
// {global, global-nodyn, local, local-nodyn} across rates with both
// variabilities.
func BenchmarkFig8DollarCost(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Rows[0].Summary.TotalCostUSD, "global-cost-usd")
		}
	}
}

// BenchmarkFig9DynamismBenefit regenerates Fig. 9: the dollar-cost savings
// application dynamism delivers.
func BenchmarkFig9DynamismBenefit(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		f8, err := experiments.RunFig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		f9, err := experiments.DeriveFig9(f8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(f9.MeanGlobalSavings(), "globalSavings%")
		}
	}
}

// BenchmarkAblations regenerates the design-choice ablation table
// (release-window policy, hysteresis, alternate cadence, consolidation,
// monitoring smoothing).
func BenchmarkAblations(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAblations(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Rows[0].Summary.TotalCostUSD, "baseline-cost-usd")
		}
	}
}

// BenchmarkFaultTolerance regenerates the §9 fault-tolerance extension:
// static vs adaptive policies under exponential VM crashes.
func BenchmarkFaultTolerance(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFaultTolerance(cfg, 20, 1.5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.Rows[len(r.Rows)-1].Crashes), "crashes")
		}
	}
}

// BenchmarkTableVMClasses regenerates the §8.1 VM instance-type table.
func BenchmarkTableVMClasses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.VMClassTable(); len(tbl) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Microbenchmarks of the substrates the figures run on. ---

// BenchmarkSimulatorInterval measures one engine interval on the
// evaluation dataflow with an adaptive global policy attached.
func BenchmarkSimulatorInterval(b *testing.B) {
	g := dataflow.EvalGraph()
	obj, err := PaperSigma(g, 20, 1)
	if err != nil {
		b.Fatal(err)
	}
	h, err := NewHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: true, Objective: obj})
	if err != nil {
		b.Fatal(err)
	}
	prof, err := rates.NewConstant(20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := sim.NewEngine(sim.Config{
			Graph:      g,
			Menu:       MustMenu(AWS2013Classes()),
			Perf:       trace.MustReplayed(trace.ReplayedConfig{Seed: 1}),
			Inputs:     map[int]rates.Profile{0: prof},
			HorizonSec: 3600,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := e.Run(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineStepFaults measures raw engine step throughput with the
// control-plane fault injectors off and on, isolating the overhead the
// chaoscloud layer adds to every interval (boot queues, capacity draws,
// monitor perturbation).
func BenchmarkEngineStepFaults(b *testing.B) {
	g := dataflow.EvalGraph()
	obj, err := PaperSigma(g, 20, 1)
	if err != nil {
		b.Fatal(err)
	}
	prof, err := rates.NewConstant(20)
	if err != nil {
		b.Fatal(err)
	}
	faults := &sim.ControlFaults{
		Provisioning: &sim.ProvisioningFaults{MeanBootSec: 120},
		Acquisition:  &sim.AcquisitionFaults{FailProb: 0.2, BurstEverySec: 3600, AfterSec: 60},
		Monitoring:   &sim.MonitoringFaults{StaleProb: 0.3, NoiseFrac: 0.2},
		Seed:         7,
	}
	const horizon = 3600
	for _, bc := range []struct {
		name string
		cf   *sim.ControlFaults
	}{
		{"faults=off", nil},
		{"faults=on", faults},
	} {
		b.Run(bc.name, func(b *testing.B) {
			intervals := int64(0)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h, err := NewHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: true, Objective: obj})
				if err != nil {
					b.Fatal(err)
				}
				e, err := sim.NewEngine(sim.Config{
					Graph:         g,
					Menu:          MustMenu(AWS2013Classes()),
					Perf:          trace.MustReplayed(trace.ReplayedConfig{Seed: 1}),
					Inputs:        map[int]rates.Profile{0: prof},
					HorizonSec:    horizon,
					ControlFaults: bc.cf,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				sum, err := e.Run(h)
				if err != nil {
					b.Fatal(err)
				}
				intervals += int64(sum.Intervals)
			}
			if b.Elapsed() > 0 {
				b.ReportMetric(float64(intervals)/b.Elapsed().Seconds(), "steps/s")
			}
		})
	}
}

// BenchmarkEngineStepChecker measures the overhead the invariant checker
// adds to every interval: the full state snapshot plus the six-law sweep,
// against the same run with the checker detached.
func BenchmarkEngineStepChecker(b *testing.B) {
	g := dataflow.EvalGraph()
	obj, err := PaperSigma(g, 20, 1)
	if err != nil {
		b.Fatal(err)
	}
	prof, err := rates.NewConstant(20)
	if err != nil {
		b.Fatal(err)
	}
	for _, checked := range []bool{false, true} {
		name := "checker=off"
		if checked {
			name = "checker=on"
		}
		b.Run(name, func(b *testing.B) {
			intervals := int64(0)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h, err := NewHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: true, Objective: obj})
				if err != nil {
					b.Fatal(err)
				}
				cfg := sim.Config{
					Graph:      g,
					Menu:       MustMenu(AWS2013Classes()),
					Perf:       trace.MustReplayed(trace.ReplayedConfig{Seed: 1}),
					Inputs:     map[int]rates.Profile{0: prof},
					HorizonSec: 3600,
				}
				if checked {
					cfg.Checker = NewStrictInvariantChecker()
				}
				e, err := sim.NewEngine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				sum, err := e.Run(h)
				if err != nil {
					b.Fatal(err)
				}
				intervals += int64(sum.Intervals)
			}
			if b.Elapsed() > 0 {
				b.ReportMetric(float64(intervals)/b.Elapsed().Seconds(), "steps/s")
			}
		})
	}
}

// BenchmarkTraceGeneration measures four-day synthetic CPU trace
// generation.
func BenchmarkTraceGeneration(b *testing.B) {
	cfg := trace.DefaultCPUConfig()
	for i := 0; i < b.N; i++ {
		p := trace.MustReplayed(trace.ReplayedConfig{Seed: int64(i), CPUTraces: 1, NetTraces: 1})
		_ = p.CPUCoeff(0, 0)
	}
	_ = cfg
}

// BenchmarkBinpackGlobal measures the global packing pipeline on 64 items.
func BenchmarkBinpackGlobal(b *testing.B) {
	classes := []*binpack.BinClass{
		{Name: "small", Capacity: 1, Cost: 0.06},
		{Name: "medium", Capacity: 2, Cost: 0.12},
		{Name: "large", Capacity: 4, Cost: 0.24},
		{Name: "xlarge", Capacity: 8, Cost: 0.48},
	}
	items := make([]binpack.Item, 64)
	for i := range items {
		items[i] = binpack.Item{ID: i, Size: 0.25 + float64(i%13)*0.55}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binpack.PackGlobal(items, classes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRatePropagation measures uncapped and capped rate propagation
// on the evaluation dataflow.
func BenchmarkRatePropagation(b *testing.B) {
	g := dataflow.EvalGraph()
	sel := dataflow.DefaultSelection(g)
	in := dataflow.InputRates{0: 50}
	caps := []float64{100, 100, 100, 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dataflow.PropagateRates(g, sel, in); err != nil {
			b.Fatal(err)
		}
		if _, err := dataflow.PredictOmega(g, sel, in, caps); err != nil {
			b.Fatal(err)
		}
	}
}
